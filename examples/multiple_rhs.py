#!/usr/bin/env python
"""Multiple right-hand sides and related systems via operator aliasing.

Paper §4.2: multi-operator systems generalize the "application-aware
solvers" of Trilinos (unsupported in PETSc).  Two patterns:

* **Multiple RHS** — solve ``A x_i = b_i`` for several ``b_i`` at once
  as the system ``{(K, A, 1, 1), ..., (K, A, n, n)}``.  The *same*
  matrix object appears in every component, so its storage is shared —
  no n-fold duplication of A.

* **Related systems** — solve ``(A0 + ΔA_i) x_i = b_i`` where each
  system perturbs a common base matrix: the base is stored once and
  each perturbation is its own small component.

The example verifies both the numerics (against independent SciPy
solves) and the memory claim (aliased bytes counted once).

Run:  python examples/multiple_rhs.py
"""

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core import BiCGStabSolver, CGSolver, Planner
from repro.runtime import IndexSpace, Partition, Runtime, ShardedMapper, lassen
from repro.sparse import COOMatrix, CSRMatrix


def multiple_rhs() -> None:
    print("--- multiple right-hand sides, one aliased matrix ---")
    n, n_systems = 400, 3
    A = sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n), format="csr")
    rng = np.random.default_rng(11)
    rhs_list = [rng.random(n) for _ in range(n_systems)]

    machine = lassen(2)
    runtime = Runtime(machine=machine, mapper=ShardedMapper(machine))
    planner = Planner(runtime)

    # One shared domain space; every x_i and b_i live over it.
    space = IndexSpace.linear(n, name="D_shared")
    matrix = CSRMatrix.from_scipy(A, domain_space=space, range_space=space)
    part = Partition.equal(space, 4)
    for i in range(n_systems):
        sid = planner.add_sol_vector((space, np.zeros(n)), part)
        rid = planner.add_rhs_vector((space, rhs_list[i]), part)
        planner.add_operator(matrix, sid, rid)  # the SAME matrix object

    solver = CGSolver(planner)
    result = solver.solve(tolerance=1e-10, max_iterations=3000)

    # All systems converged together; verify each one.
    from repro.core.planner import SOL
    total = planner.vector(SOL).to_array(runtime.store)
    for i, b in enumerate(rhs_list):
        x_i = total[i * n : (i + 1) * n]
        x_ref = spla.spsolve(A.tocsc(), b)
        err = np.linalg.norm(x_i - x_ref) / np.linalg.norm(x_ref)
        print(f"  system {i}: residual={np.linalg.norm(A @ x_i - b):.2e} "
              f"error vs direct={err:.2e}")
        assert err < 1e-6

    stored = planner.system.total_stored_bytes()
    logical = planner.system.total_logical_bytes()
    print(f"  matrix bytes stored: {stored:,} "
          f"(a block formulation would store {logical:,} — "
          f"{logical // stored}x more)")
    assert stored * n_systems == logical


def related_systems() -> None:
    print("--- related systems: A0 + dA_i, base stored once ---")
    n, n_systems = 300, 3
    A0 = sp.diags([-1.0, 4.0, -1.0], [-1, 0, 1], shape=(n, n), format="csr")
    rng = np.random.default_rng(5)

    machine = lassen(2)
    runtime = Runtime(machine=machine, mapper=ShardedMapper(machine))
    planner = Planner(runtime)
    space = IndexSpace.linear(n, name="D_related")
    base = CSRMatrix.from_scipy(A0, domain_space=space, range_space=space)
    part = Partition.equal(space, 4)

    perturbed, rhs_list = [], []
    for i in range(n_systems):
        # A small perturbation touching a handful of entries.
        k = 8
        idx = rng.choice(n, size=k, replace=False).astype(np.int64)
        vals = rng.normal(scale=0.05, size=k)
        delta = COOMatrix(vals, idx, idx, domain_space=space, range_space=space)
        b = rng.random(n)
        sid = planner.add_sol_vector((space, np.zeros(n)), part)
        rid = planner.add_rhs_vector((space, b), part)
        planner.add_operator(base, sid, rid)   # shared base
        planner.add_operator(delta, sid, rid)  # per-system perturbation
        A_i = (A0 + sp.csr_matrix((vals, (idx, idx)), shape=(n, n))).tocsr()
        perturbed.append(A_i)
        rhs_list.append(b)

    solver = BiCGStabSolver(planner)
    result = solver.solve(tolerance=1e-10, max_iterations=3000)
    from repro.core.planner import SOL
    total = planner.vector(SOL).to_array(runtime.store)
    for i, (A_i, b) in enumerate(zip(perturbed, rhs_list)):
        x_i = total[i * n : (i + 1) * n]
        err = np.linalg.norm(A_i @ x_i - b)
        print(f"  system {i}: residual={err:.2e}")
        assert err < 1e-6
    stored = planner.system.total_stored_bytes()
    logical = planner.system.total_logical_bytes()
    print(f"  matrix bytes stored: {stored:,} vs {logical:,} without aliasing")
    assert stored < logical


if __name__ == "__main__":
    multiple_rhs()
    related_systems()
