#!/usr/bin/env python
"""The P4 scenario: solving with non-co-located boundary and interior data.

The paper's introduction motivates multi-operator systems with a
boundary-value problem whose 2-D boundary data and 3-D interior data
come from *different sources* — traditional solver libraries force the
user to reindex and reassemble both into one contiguous vector, which
costs data movement and serializes setup.

This example solves a coupled 3-D Poisson problem where the ``z = 0``
face was produced by a separate "boundary subroutine" as its own array.
The two arrays are handed to the planner exactly where they are
(``add_sol_vector`` / ``add_rhs_vector`` ingest in place); four coupling
matrices relate the two components; CG solves the whole system.  At the
end we verify against a monolithic SciPy solve of the reassembled
system — the reassembly that KDRSolvers never had to do.

Run:  python examples/boundary_coupling.py
"""

import numpy as np
import scipy.sparse.linalg as spla

from repro.core import CGSolver, Planner
from repro.problems import coupled_boundary_problem
from repro.runtime import Partition, Runtime, ShardedMapper, lassen


def main() -> None:
    problem = coupled_boundary_problem((12, 12, 8))
    rng = np.random.default_rng(3)

    # Two independent "subroutines" produce the RHS pieces:
    interior_rhs = rng.random(problem.n_interior)  # 3-D field source
    boundary_rhs = rng.random(problem.n_boundary)  # 2-D boundary source
    print(f"interior unknowns: {problem.n_interior}, "
          f"boundary unknowns: {problem.n_boundary} "
          f"(strided through the global numbering — genuinely non-contiguous)")

    machine = lassen(2)
    runtime = Runtime(machine=machine, mapper=ShardedMapper(machine))
    planner = Planner(runtime)

    # Ingest both data sets in place: no reindexing, no reassembly.
    pieces = 4
    int_part = Partition.equal(problem.interior_space, pieces)
    bnd_part = Partition.equal(problem.boundary_space, min(pieces, 2))
    sol_int = planner.add_sol_vector(
        (problem.interior_space, np.zeros(problem.n_interior)), int_part)
    sol_bnd = planner.add_sol_vector(
        (problem.boundary_space, np.zeros(problem.n_boundary)), bnd_part)
    rhs_int = planner.add_rhs_vector((problem.interior_space, interior_rhs), int_part)
    rhs_bnd = planner.add_rhs_vector((problem.boundary_space, boundary_rhs), bnd_part)

    sol_ids = [sol_int, sol_bnd]
    rhs_ids = [rhs_int, rhs_bnd]
    for matrix, src, dst in problem.tiles:
        planner.add_operator(matrix, sol_ids[src], rhs_ids[dst])
    print(f"multi-operator system with {len(problem.tiles)} coupling components")

    solver = CGSolver(planner)
    result = solver.solve(tolerance=1e-10, max_iterations=2000)
    print(f"CG converged={result.converged} in {result.iterations} iterations "
          f"(simulated {result.mean_iteration_time * 1e6:.1f} µs/iter)")

    # Verify against the monolithic reassembled system.
    x_interior = planner.get_array(0)[: problem.n_interior]
    from repro.core.planner import SOL
    total = planner.vector(SOL).to_array(runtime.store)
    x_interior = total[: problem.n_interior]
    x_boundary = total[problem.n_interior:]
    x_global = problem.assemble_global_vector(x_interior, x_boundary)
    b_global = problem.assemble_global_vector(interior_rhs, boundary_rhs)
    x_ref = spla.spsolve(problem.global_matrix.tocsc(), b_global)
    err = np.linalg.norm(x_global - x_ref) / np.linalg.norm(x_ref)
    print(f"relative error vs monolithic direct solve: {err:.2e}")
    assert err < 1e-7, "coupled solve disagrees with the monolithic reference"
    print("OK: identical answer, zero reassembly.")


if __name__ == "__main__":
    main()
