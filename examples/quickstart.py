#!/usr/bin/env python
"""Quickstart: solve a Poisson problem three ways.

1. One-call :func:`repro.api.solve`.
2. The planner API of the paper's Figures 5–6, driving the CG solver of
   Figure 7 step by step.
3. Swapping solvers without touching the problem setup (the "drop-in
   replacement" property of §5).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import make_planner, solve
from repro.core import CGSolver, GMRESSolver, MINRESSolver, SOL
from repro.problems import laplacian_scipy
from repro.runtime import lassen

def main() -> None:
    # A 2-D Poisson problem on a 64 x 64 grid (5-point stencil).
    A = laplacian_scipy("2d5", (64, 64))
    n = A.shape[0]
    rng = np.random.default_rng(7)
    b = rng.random(n)

    # --- 1. One-call solve -------------------------------------------------
    x, result = solve(A, b, solver="cg", tolerance=1e-10, machine=lassen(2))
    print(f"[one-call]  converged={result.converged} "
          f"iterations={result.iterations} "
          f"residual={np.linalg.norm(A @ x - b):.2e} "
          f"simulated time/iter={result.mean_iteration_time * 1e6:.1f} µs")

    # --- 2. The planner API, by hand ----------------------------------------
    planner = make_planner(A, b, machine=lassen(2))
    assert planner.is_square() and not planner.has_preconditioner()
    cg = CGSolver(planner)             # Figure 7, transcribed
    steps = 0
    while cg.get_convergence_measure() > 1e-10:
        cg.step()
        steps += 1
    x2 = planner.get_array(SOL)
    print(f"[planner]   iterations={steps} "
          f"residual={np.linalg.norm(A @ x2 - b):.2e}")

    # --- 3. Drop-in solver replacement ---------------------------------------
    for solver_cls in (GMRESSolver, MINRESSolver):
        planner = make_planner(A, b, machine=lassen(2))
        ksm = solver_cls(planner)
        res = ksm.solve(tolerance=1e-10, max_iterations=5000)
        x3 = planner.get_array(SOL)
        print(f"[{ksm.name:8s}] converged={res.converged} "
              f"iterations={res.iterations} "
              f"residual={np.linalg.norm(A @ x3 - b):.2e}")


if __name__ == "__main__":
    main()
