#!/usr/bin/env python
"""Implicit heat equation: interleaving application work with solves (P1).

The paper's P1 critique: MPI-based solver libraries assume exclusive
control of the machine during a solve, so independent application work
cannot overlap it.  In a task-based runtime both streams are just tasks;
the scheduler interleaves them wherever dependences allow.

This example runs backward-Euler time stepping of the heat equation
``(I + dt·L) u^{t+1} = u^t`` and, *between solver iterations*, launches
independent "application analysis" tasks (here: reductions over a
separate diagnostics field).  It then compares the simulated makespan
against running the same work phase-by-phase (solve, then analysis),
demonstrating that interleaving absorbs the analysis almost for free —
and that the matrix is ingested and reused once while its trace is
replayed across all time steps.

Run:  python examples/heat_implicit.py
"""

import numpy as np
import scipy.sparse as sp

from repro.core import CGSolver, Planner, RHS, SOL
from repro.problems import laplacian_scipy
from repro.runtime import (
    IndexSpace,
    Partition,
    Privilege,
    ProcKind,
    Runtime,
    ShardedMapper,
    TaskLauncher,
    lassen,
)
from repro.sparse import CSRMatrix


def make_analysis_batch(runtime, diag_region, diag_part):
    """Independent application work: one compute-heavy per-piece kernel
    over a diagnostics field with no dependence on the solver's data
    (think: a local chemistry update in a multiphysics code)."""
    futures = []
    for p in range(diag_part.n_colors):
        def body(ctx):
            vals = ctx[0].read()
            return float(np.abs(vals).max())

        tl = TaskLauncher(
            "analysis",
            body,
            proc_kind=ProcKind.GPU,
            flops=1.5e9,  # a compute-heavy local kernel (~190 µs on a V100)
            bytes_touched=8.0 * diag_part[p].volume,
            owner_hint=p,
        )
        tl.add_requirement(diag_region, ["v"], diag_part[p], Privilege.READ_ONLY)
        futures.append(runtime.execute(tl, point=p))
    return futures


def run(interleave: bool, steps: int = 5, cg_iters: int = 30):
    machine = lassen(2)
    runtime = Runtime(machine=machine, mapper=ShardedMapper(machine))
    planner = Planner(runtime)

    side = 128
    n = side * side
    dt = 0.1
    L = laplacian_scipy("2d5", (side, side))
    A = (sp.identity(n) + dt * L).tocsr()

    space = IndexSpace.linear(n, name="D_heat")
    part = Partition.equal(space, 8)
    u0 = np.exp(-np.linspace(-4, 4, n) ** 2)  # initial temperature bump
    sid = planner.add_sol_vector((space, np.zeros(n)), part)
    rid = planner.add_rhs_vector((space, u0.copy()), part)
    planner.add_operator(
        CSRMatrix.from_scipy(A, domain_space=space, range_space=space), sid, rid
    )

    # Application-side diagnostics field, independent of the solve.
    diag_space = IndexSpace.linear(n)
    diag_region = runtime.create_region(diag_space, {"v": np.float64})
    runtime.allocate(diag_region, "v", fill=1.0)
    diag_part = Partition.equal(diag_space, 8)

    solver = CGSolver(planner)
    batches_per_step = 3
    t0 = runtime.sim_time
    for step in range(steps):
        if interleave:
            # Application work drips in between solver iterations; the
            # scheduler slots it into the solver's latency gaps.
            stride = max(1, cg_iters // batches_per_step)
            for it in range(cg_iters):
                if it % stride == 0:
                    make_analysis_batch(runtime, diag_region, diag_part)
                runtime.begin_trace("heat-cg")
                solver.step()
                runtime.end_trace("heat-cg")
        else:
            # Bulk-synchronous style: the library owns the machine during
            # the solve; application work waits behind a phase fence.
            solver.run_fixed(cg_iters)
            runtime.fence()
            for _ in range(batches_per_step):
                make_analysis_batch(runtime, diag_region, diag_part)
            runtime.fence()
        # u^t ← u^{t+1} for the next step (RHS update).
        planner.copy(RHS, SOL)
    makespan = runtime.sim_time - t0
    return makespan, planner.get_array(SOL)


def main() -> None:
    t_phased, u_phased = run(interleave=False)
    t_inter, u_inter = run(interleave=True)
    np.testing.assert_allclose(u_phased, u_inter, atol=1e-12)
    print(f"phased     (solve, then analysis): {t_phased * 1e3:8.2f} ms simulated")
    print(f"interleaved (analysis overlapped): {t_inter * 1e3:8.2f} ms simulated")
    print(f"interleaving recovered {(1 - t_inter / t_phased) * 100:.1f}% "
          f"of the makespan — identical numerics.")
    assert t_inter < t_phased


if __name__ == "__main__":
    main()
