"""The verified pass pipeline: dead-fill elision, privilege narrowing,
and the conservativeness checks that gate every rewrite."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analyze import build_program, capture_plan
from repro.analyze.checkers import static_interference_edges
from repro.analyze.fusion import window_subgraph
from repro.analyze.passes import (
    PassVerificationError,
    narrow_window,
    optimize_window,
)
from repro.runtime import (
    IndexSpace,
    Partition,
    Privilege,
    ProcKind,
    Subset,
    TaskLauncher,
)
from repro.runtime.kernels import KernelBody
from repro.sparse.plugin import matrix_format_names

FEW = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def kernel_window(build):
    def program(rt):
        a = rt.create_region(IndexSpace.linear(32), {"v": np.float64})
        b = rt.create_region(IndexSpace.linear(32), {"v": np.float64})
        rt.allocate(a, "v")
        rt.allocate(b, "v")
        build(rt, (a, Partition.equal(a.ispace, 2)),
              (b, Partition.equal(b.ispace, 2)))

    return list(capture_plan(program))


def klaunch(rt, kernel, reqs, **kwargs):
    tl = TaskLauncher(kernel, KernelBody(kernel), proc_kind=ProcKind.CPU,
                      kwargs=kwargs)
    for region, subset, privilege in reqs:
        tl.add_requirement(region, ["v"], subset, privilege)
    return rt.execute(tl)


class TestDeadFillElision:
    def window_with_dead_fill(self):
        # fill a[0] = 3.0 is fully overwritten by the copy before any
        # read — the canonical elidable store.
        return kernel_window(lambda rt, a, b: (
            klaunch(rt, "fill", [(a[0], a[1][0], Privilege.WRITE_DISCARD)],
                    value=3.0),
            klaunch(rt, "copy",
                    [(a[0], a[1][0], Privilege.WRITE_DISCARD),
                     (b[0], b[1][0], Privilege.READ_ONLY)]),
        ))

    def test_fully_overwritten_fill_is_elided(self):
        opt = optimize_window(self.window_with_dead_fill())
        assert opt.elided == {0: (1,)}
        assert opt.metrics["tasks_before"] == 2
        assert opt.metrics["tasks_after"] == 1
        assert opt.metrics["elided_fills"] == 1
        assert opt.metrics["footprint_bytes_saved"] > 0
        assert [t.name for t in opt.live_window()] == ["copy"]
        assert any(f.code == "PLAN-OPT-ELIDED" for f in opt.findings)

    def test_elision_can_be_disabled(self):
        opt = optimize_window(self.window_with_dead_fill(),
                              elide_dead_fills=False)
        assert opt.elided == {}
        assert opt.metrics["tasks_after"] == 2

    def test_intervening_read_keeps_fill_live(self):
        window = kernel_window(lambda rt, a, b: (
            klaunch(rt, "fill", [(a[0], a[1][0], Privilege.WRITE_DISCARD)],
                    value=3.0),
            klaunch(rt, "copy",
                    [(b[0], b[1][0], Privilege.WRITE_DISCARD),
                     (a[0], a[1][0], Privilege.READ_ONLY)]),  # reads the fill
            klaunch(rt, "copy",
                    [(a[0], a[1][0], Privilege.WRITE_DISCARD),
                     (b[0], b[1][1], Privilege.READ_ONLY)]),
        ))
        assert optimize_window(window).elided == {}

    def test_partial_overwrite_keeps_fill_live(self):
        def build(rt, a, b):
            region, part = a
            klaunch(rt, "fill",
                    [(region, Subset.full(region.ispace),
                      Privilege.WRITE_DISCARD)], value=3.0)
            klaunch(rt, "copy",
                    [(region, part[0], Privilege.WRITE_DISCARD),
                     (b[0], b[1][0], Privilege.READ_ONLY)])

        assert optimize_window(kernel_window(build)).elided == {}

    def test_multi_piece_overwrite_joins(self):
        # A full-region fill overwritten piecewise by two WRITE_DISCARD
        # copies: both overwriters recorded, fill dead.
        def build(rt, a, b):
            region, part = a
            klaunch(rt, "fill",
                    [(region, Subset.full(region.ispace),
                      Privilege.WRITE_DISCARD)], value=1.5)
            for p in range(2):
                klaunch(rt, "copy",
                        [(region, part[p], Privilege.WRITE_DISCARD),
                         (b[0], b[1][p], Privilege.READ_ONLY)])

        opt = optimize_window(kernel_window(build))
        assert opt.elided == {0: (1, 2)}


class TestPrivilegeNarrowing:
    def test_reduction_form_read_write_narrows_to_reduce(self):
        window = kernel_window(lambda rt, a, b: klaunch(
            rt, "axpy",
            [(a[0], a[1][0], Privilege.READ_WRITE),
             (b[0], b[1][0], Privilege.READ_ONLY)],
            alpha=0.5,
        ))
        assert narrow_window(window) == {(0, 0): (Privilege.REDUCE, "+")}

    def test_read_only_usage_narrows_write_declaration(self):
        # dot_partial only reads; a READ_WRITE declaration narrows.
        window = kernel_window(lambda rt, a, b: klaunch(
            rt, "dot_partial",
            [(a[0], a[1][0], Privilege.READ_WRITE),
             (b[0], b[1][0], Privilege.READ_ONLY)],
        ))
        assert narrow_window(window) == {(0, 0): (Privilege.READ_ONLY, "")}

    def test_untouched_write_slot_narrows_to_read_only(self):
        window = kernel_window(lambda rt, a, b: klaunch(
            rt, "copy",
            [(a[0], a[1][0], Privilege.WRITE_DISCARD),
             (b[0], b[1][0], Privilege.READ_ONLY),
             (a[0], a[1][1], Privilege.READ_WRITE)],  # body never touches
        ))
        assert narrow_window(window) == {(0, 2): (Privilege.READ_ONLY, "")}

    def test_correct_declarations_are_untouched(self):
        window = kernel_window(lambda rt, a, b: klaunch(
            rt, "copy",
            [(a[0], a[1][0], Privilege.WRITE_DISCARD),
             (b[0], b[1][0], Privilege.READ_ONLY)],
        ))
        assert narrow_window(window) == {}

    def test_narrowing_shrinks_interference(self):
        # Two axpy launches accumulating into the same piece: declared
        # READ_WRITE they conflict; narrowed to REDUCE "+" they commute.
        window = kernel_window(lambda rt, a, b: (
            klaunch(rt, "axpy",
                    [(a[0], a[1][0], Privilege.READ_WRITE),
                     (b[0], b[1][0], Privilege.READ_ONLY)], alpha=1.0),
            klaunch(rt, "axpy",
                    [(a[0], a[1][0], Privilege.READ_WRITE),
                     (b[0], b[1][1], Privilege.READ_ONLY)], alpha=2.0),
        ))
        declared = static_interference_edges(window_subgraph(window))
        opt = optimize_window(window)
        assert (0, 1) in declared
        assert opt.narrowed_edges == set()
        assert opt.metrics["interference_edges_declared"] == len(declared)
        assert opt.metrics["interference_edges_narrowed"] == 0

    def test_overlay_never_mutates_the_window(self):
        window = kernel_window(lambda rt, a, b: klaunch(
            rt, "axpy",
            [(a[0], a[1][0], Privilege.READ_WRITE),
             (b[0], b[1][0], Privilege.READ_ONLY)],
            alpha=0.5,
        ))
        opt = optimize_window(window)
        assert opt.narrowed
        # Execution sees the declared privileges, untouched.
        assert window[0].requirements[0].privilege is Privilege.READ_WRITE
        narrowed = opt.narrowed_window()
        assert narrowed[0].requirements[0].privilege is Privilege.REDUCE


class TestVerification:
    def test_illegal_narrowing_is_refused(self, monkeypatch):
        # Fabricate a "narrowing" that strengthens READ_ONLY into
        # READ_WRITE on overlapping readers: it adds an interference
        # edge, and the verifier must refuse the rewrite.
        window = kernel_window(lambda rt, a, b: (
            klaunch(rt, "dot_partial",
                    [(a[0], a[1][0], Privilege.READ_ONLY),
                     (b[0], b[1][0], Privilege.READ_ONLY)]),
            klaunch(rt, "dot_partial",
                    [(a[0], a[1][0], Privilege.READ_ONLY),
                     (b[0], b[1][0], Privilege.READ_ONLY)]),
        ))
        monkeypatch.setattr(
            "repro.analyze.passes.narrow_window",
            lambda win: {(0, 0): (Privilege.READ_WRITE, "")},
        )
        with pytest.raises(PassVerificationError, match="interference"):
            optimize_window(window)

    def test_portability_rides_on_the_result(self):
        window = kernel_window(lambda rt, a, b: klaunch(
            rt, "copy",
            [(a[0], a[1][0], Privilege.WRITE_DISCARD),
             (b[0], b[1][0], Privilege.READ_ONLY)],
        ))
        opt = optimize_window(window)
        assert opt.certificate is not None
        assert opt.portability_problems == []
        assert opt.metrics["portability_certified"] is True


class TestNarrowingNeverAddsEdges:
    """Satellite property: over real captured solver programs, the
    narrowed interference set is always a subset of the declared set
    (optimize_window would raise otherwise — assert the metrics too)."""

    @FEW
    @given(
        solver=st.sampled_from(["cg", "bicgstab", "cgs", "minres", "tfqmr"]),
        fmt=st.sampled_from(matrix_format_names()),
    )
    def test_solver_streams_only_shrink(self, solver, fmt):
        prog = build_program(solver, fmt=fmt, size=16, pieces=2, iterations=2)
        window = list(capture_plan(prog))
        declared = static_interference_edges(window_subgraph(window))
        opt = optimize_window(window)
        assert opt.narrowed_edges <= declared
        assert (opt.metrics["interference_edges_narrowed"]
                <= opt.metrics["interference_edges_declared"])
