"""AST effect inference over registry kernel bodies, the plan-level
privilege cross-checks, and the static portability certificate."""

import numpy as np

from repro.analyze import capture_plan
from repro.analyze.effects import (
    SlotEffect,
    certify_window,
    cross_check_task,
    infer_kernel_effects,
    kernel_effects,
    minimal_requirement_privileges,
    slot_to_requirement,
)
from repro.runtime import (
    IndexSpace,
    Partition,
    Privilege,
    ProcKind,
    TaskLauncher,
)
from repro.runtime.kernels import KernelBody


def kernel_window(build):
    """Capture a window of kernel-bodied tasks.  ``build`` receives
    ``(rt, (region_a, part_a), (region_b, part_b))``."""
    def program(rt):
        a = rt.create_region(IndexSpace.linear(32), {"v": np.float64})
        b = rt.create_region(IndexSpace.linear(32), {"v": np.float64})
        rt.allocate(a, "v")
        rt.allocate(b, "v")
        build(rt, (a, Partition.equal(a.ispace, 2)),
              (b, Partition.equal(b.ispace, 2)))

    return list(capture_plan(program))


def klaunch(rt, kernel, reqs, **kwargs):
    """Launch a registry kernel with explicit (region, subset, privilege)
    requirements."""
    tl = TaskLauncher(kernel, KernelBody(kernel), proc_kind=ProcKind.CPU,
                      kwargs=kwargs)
    for region, subset, privilege in reqs:
        tl.add_requirement(region, ["v"], subset, privilege)
    return rt.execute(tl)


def opaque_launch(rt, name, reqs):
    tl = TaskLauncher(name, lambda ctx: None, proc_kind=ProcKind.CPU)
    for region, subset, privilege in reqs:
        tl.add_requirement(region, ["v"], subset, privilege)
    return rt.execute(tl)


class TestRegistryInference:
    def test_copy_writes_dst_reads_src(self):
        eff = infer_kernel_effects("copy")
        assert eff.exact and eff.portable
        assert eff.slot(0).writes and not eff.slot(0).reads
        assert eff.slot(1).reads and not eff.slot(1).writes
        assert eff.slot(0).minimal_privilege() == (Privilege.WRITE_DISCARD, "")
        assert eff.slot(1).minimal_privilege() == (Privilege.READ_ONLY, "")

    def test_fill_reads_its_value_kwarg(self):
        eff = infer_kernel_effects("fill")
        assert eff.kwargs_read == ("value",)
        assert eff.slot(0).writes

    def test_axpy_is_additive_reduction_form(self):
        # ctx[0].write(ctx[0].read() + alpha * ctx[1].read()) — the write
        # commutes like REDUCE "+", which is what unlocks narrowing.
        eff = infer_kernel_effects("axpy")
        assert eff.slot(0).reduction_form
        assert eff.slot(0).minimal_privilege() == (Privilege.REDUCE, "+")
        assert eff.slot(1).minimal_privilege() == (Privilege.READ_ONLY, "")

    def test_xpay_is_not_reduction_form(self):
        # ctx[0].write(ctx[1].read() + alpha * ctx[0].read()) — the own
        # read is buried inside a product, so the write does not commute.
        eff = infer_kernel_effects("xpay")
        assert not eff.slot(0).reduction_form
        assert eff.slot(0).minimal_privilege() == (Privilege.READ_WRITE, "")

    def test_dot_partial_only_reads(self):
        eff = infer_kernel_effects("dot_partial")
        for i in (0, 1):
            assert eff.slot(i).minimal_privilege() == (Privilege.READ_ONLY, "")

    def test_spmv_reduce_reduces_its_output(self):
        eff = infer_kernel_effects("spmv_reduce")
        assert eff.uses_payload
        assert eff.slot(2).reduces
        assert eff.slot(2).minimal_privilege() == (Privilege.REDUCE, "+")

    def test_spmv_exclusive_never_touches_matrix_slot(self):
        # Slot 0 (the matrix entries) models data movement only; the
        # body never dereferences it.
        eff = infer_kernel_effects("spmv_exclusive")
        assert not eff.slot(0).touched
        assert eff.slot(2).minimal_privilege() == (Privilege.WRITE_DISCARD, "")


class TestInferenceHygiene:
    def test_blocking_get_fails_hygiene(self):
        def bad(ctx, payload):
            return ctx[0].read() + payload.get()

        eff = infer_kernel_effects("test-blocking-get", bad)
        assert not eff.portable
        assert any("blocking .get()" in issue for issue in eff.issues)

    def test_escaping_context_disables_exactness(self):
        def bad(ctx, payload):
            payload(ctx)

        eff = infer_kernel_effects("test-ctx-escape", bad)
        assert not eff.exact

    def test_alias_resolves_to_slot(self):
        def body(ctx, payload):
            acc = ctx[0]
            acc.write(acc.read() + 1.0)

        eff = infer_kernel_effects("test-alias", body)
        assert eff.slot(0).reduction_form

    def test_write_plus_reduce_is_contradictory(self):
        def bad(ctx, payload):
            ctx[0].write(np.zeros(1))
            ctx[0].reduce_add(np.ones(1))

        eff = infer_kernel_effects("test-contradiction", bad)
        assert not eff.portable
        assert eff.slot(0).minimal_privilege() is None

    def test_untouched_slot_effect_is_empty(self):
        s = SlotEffect(index=3)
        assert not s.touched
        assert s.minimal_privilege() is None


class TestRequirementMapping:
    def test_slots_flatten_fields_in_declaration_order(self):
        window = kernel_window(lambda rt, a, b: klaunch(
            rt, "copy",
            [(a[0], a[1][0], Privilege.WRITE_DISCARD),
             (b[0], b[1][0], Privilege.READ_ONLY)],
        ))
        assert slot_to_requirement(window[0].requirements) == [0, 1]

    def test_minimal_requirement_privileges_join_slots(self):
        window = kernel_window(lambda rt, a, b: klaunch(
            rt, "axpy",
            [(a[0], a[1][0], Privilege.READ_WRITE),
             (b[0], b[1][0], Privilege.READ_ONLY)],
            alpha=0.5,
        ))
        task = window[0]
        minimal = minimal_requirement_privileges(
            kernel_effects(task), task.requirements
        )
        assert minimal[0] == (Privilege.REDUCE, "+")
        assert minimal[1] == (Privilege.READ_ONLY, "")

    def test_opaque_body_has_no_effects(self):
        window = kernel_window(lambda rt, a, b: opaque_launch(
            rt, "mystery", [(a[0], a[1][0], Privilege.READ_WRITE)]
        ))
        assert kernel_effects(window[0]) is None
        assert cross_check_task(window[0]) == []


class TestCrossCheck:
    def test_clean_declaration_yields_no_findings(self):
        window = kernel_window(lambda rt, a, b: klaunch(
            rt, "copy",
            [(a[0], a[1][0], Privilege.WRITE_DISCARD),
             (b[0], b[1][0], Privilege.READ_ONLY)],
        ))
        assert cross_check_task(window[0]) == []

    def test_write_under_read_only_is_error(self):
        window = kernel_window(lambda rt, a, b: klaunch(
            rt, "copy",
            [(a[0], a[1][0], Privilege.READ_ONLY),
             (b[0], b[1][0], Privilege.READ_ONLY)],
        ))
        findings = cross_check_task(window[0])
        assert [f.code for f in findings] == ["PLAN-EFFECT-MISMATCH"]
        assert findings[0].severity == "error"
        assert "writes a READ_ONLY" in findings[0].message

    def test_read_under_write_discard_is_error(self):
        window = kernel_window(lambda rt, a, b: klaunch(
            rt, "copy",
            [(a[0], a[1][0], Privilege.WRITE_DISCARD),
             (b[0], b[1][0], Privilege.WRITE_DISCARD)],
        ))
        findings = cross_check_task(window[0])
        assert [f.code for f in findings] == ["PLAN-EFFECT-MISMATCH"]
        assert "WRITE_DISCARD" in findings[0].message

    def test_untouched_write_requirement_is_overdeclared(self):
        window = kernel_window(lambda rt, a, b: klaunch(
            rt, "copy",
            [(a[0], a[1][0], Privilege.WRITE_DISCARD),
             (b[0], b[1][0], Privilege.READ_ONLY),
             (a[0], a[1][1], Privilege.READ_WRITE)],  # never a 3rd slot
        ))
        findings = cross_check_task(window[0])
        assert [f.code for f in findings] == ["PLAN-EFFECT-OVERDECLARED"]
        assert findings[0].severity == "warning"

    def test_reduction_form_read_write_is_narrowable_info(self):
        window = kernel_window(lambda rt, a, b: klaunch(
            rt, "axpy",
            [(a[0], a[1][0], Privilege.READ_WRITE),
             (b[0], b[1][0], Privilege.READ_ONLY)],
            alpha=2.0,
        ))
        findings = cross_check_task(window[0])
        assert [f.code for f in findings] == ["PLAN-EFFECT-NARROWABLE"]
        assert findings[0].severity == "info"
        assert 'REDUCE "+"' in findings[0].message


class TestPortabilityCertificate:
    def test_registry_window_certifies(self):
        window = kernel_window(lambda rt, a, b: (
            klaunch(rt, "fill", [(a[0], a[1][0], Privilege.WRITE_DISCARD)],
                    value=0.0),
            klaunch(rt, "copy",
                    [(a[0], a[1][0], Privilege.WRITE_DISCARD),
                     (b[0], b[1][0], Privilege.READ_ONLY)]),
        ))
        cert, problems = certify_window(window)
        assert problems == []
        assert cert is not None
        assert cert.kernels == ("copy", "fill")
        assert cert.n_tasks == 2
        assert cert.to_dict()["n_host_tasks"] == 0

    def test_opaque_body_blocks_certification(self):
        window = kernel_window(lambda rt, a, b: (
            klaunch(rt, "fill", [(a[0], a[1][0], Privilege.WRITE_DISCARD)],
                    value=0.0),
            opaque_launch(rt, "mystery", [(a[0], a[1][0], Privilege.READ_ONLY)]),
        ))
        cert, problems = certify_window(window)
        assert cert is None
        assert len(problems) == 1
        assert "opaque task body" in problems[0]

    def test_requirement_less_host_tasks_are_exempt(self):
        def build(rt, a, b):
            klaunch(rt, "fill", [(a[0], a[1][0], Privilege.WRITE_DISCARD)],
                    value=0.0)
            rt.execute(TaskLauncher("host", lambda ctx: 1.0,
                                    proc_kind=ProcKind.CPU))

        cert, problems = certify_window(kernel_window(build))
        assert problems == []
        assert cert is not None
        assert cert.n_host_tasks == 1
