"""``repro optimize``: the optimizer sweep driver, its baseline gate,
and the CLI plumbing (including ``repro analyze --allow``)."""

import json

import pytest

from repro.analyze.optimize import (
    OptimizeReport,
    compare_optimize_baseline,
    optimize_program,
)
from repro.cli import main


@pytest.fixture(scope="module")
def cg_row():
    # One small verified run shared across the module: metrics + a
    # bitwise replay check on the optimized plan.
    return optimize_program("cg", size=16, pieces=2, iterations=3)


class TestOptimizeProgram:
    def test_row_reports_metrics_and_verification(self, cg_row):
        assert cg_row["program"] == "cg"
        assert cg_row["tasks_after"] <= cg_row["tasks_before"]
        assert (cg_row["interference_edges_narrowed"]
                <= cg_row["interference_edges_declared"])
        assert cg_row["portability_certified"] is True
        assert cg_row["bitwise_match"] is True
        assert cg_row["windows_replayed"] == 3
        assert cg_row["fallbacks"] == 0

    def test_fig8_plan_measurably_shrinks(self):
        # Acceptance criterion: the optimizer shrinks at least one fig8
        # plan — fewer narrowed-set interference edges than declared.
        row = optimize_program("fig8-bicgstab", size=16, pieces=2,
                               iterations=3, verify=False)
        assert (row["interference_edges_narrowed"]
                < row["interference_edges_declared"])
        assert row["narrowed_requirements"] > 0

    def test_unknown_program_raises(self):
        with pytest.raises(KeyError):
            optimize_program("not-a-program", verify=False)


class TestBaselineGate:
    def base_report(self):
        report = OptimizeReport()
        report.rows.append({
            "program": "fig8-cg",
            "interference_edges_narrowed": 10,
            "tasks_after": 20,
            "narrowed_requirements": 4,
            "elided_fills": 1,
            "portability_certified": True,
        })
        return report

    def test_identical_report_passes(self):
        report = self.base_report()
        baseline = json.loads(report.to_json())
        assert compare_optimize_baseline(report, baseline) == []

    def test_more_edges_is_a_regression(self):
        report = self.base_report()
        baseline = json.loads(report.to_json())
        report.rows[0]["interference_edges_narrowed"] = 11
        failures = compare_optimize_baseline(report, baseline)
        assert len(failures) == 1
        assert "interference_edges_narrowed" in failures[0]

    def test_fewer_narrowed_requirements_is_a_regression(self):
        report = self.base_report()
        baseline = json.loads(report.to_json())
        report.rows[0]["narrowed_requirements"] = 3
        assert compare_optimize_baseline(report, baseline)

    def test_lost_certificate_is_a_regression(self):
        report = self.base_report()
        baseline = json.loads(report.to_json())
        report.rows[0]["portability_certified"] = False
        failures = compare_optimize_baseline(report, baseline)
        assert any("certificate" in f for f in failures)

    def test_improvements_pass(self):
        report = self.base_report()
        baseline = json.loads(report.to_json())
        report.rows[0]["interference_edges_narrowed"] = 8
        report.rows[0]["elided_fills"] = 2
        assert compare_optimize_baseline(report, baseline) == []

    def test_unknown_program_in_report_is_ignored(self):
        report = self.base_report()
        assert compare_optimize_baseline(report, {"rows": []}) == []


class TestOptimizeCli:
    def test_single_program_exits_zero(self, capsys, tmp_path):
        out = tmp_path / "opt.json"
        rc = main(["optimize", "cg", "--size", "16", "--pieces", "2",
                   "--iterations", "3", "--json", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "interference edges" in printed
        assert "optimize gate: OK" in printed
        payload = json.loads(out.read_text())
        assert payload["schema"] == "repro-optimize/1"
        assert payload["ok"] is True
        assert payload["rows"][0]["bitwise_match"] is True

    def test_baseline_round_trip(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        common = ["optimize", "cg", "--size", "16", "--pieces", "2",
                  "--iterations", "3", "--no-verify"]
        assert main(common + ["--baseline", str(baseline),
                              "--update-baseline"]) == 0
        assert main(common + ["--baseline", str(baseline)]) == 0

    def test_baseline_regression_fails(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        common = ["optimize", "cg", "--size", "16", "--pieces", "2",
                  "--iterations", "3", "--no-verify"]
        assert main(common + ["--baseline", str(baseline),
                              "--update-baseline"]) == 0
        # Doctor the committed baseline to promise an impossibly good
        # optimizer; the gate must now fail.
        doctored = json.loads(baseline.read_text())
        doctored["rows"][0]["interference_edges_narrowed"] = 0
        baseline.write_text(json.dumps(doctored))
        rc = main(common + ["--baseline", str(baseline)])
        assert rc == 1
        assert "regressed" in capsys.readouterr().out

    def test_unknown_program_exits_two(self, capsys):
        assert main(["optimize", "not-a-program", "--no-verify"]) == 2


class TestAnalyzeAllowGate:
    def test_committed_baseline_matches_cli_schema(self):
        with open("benchmarks/results/OPTIMIZE_baseline.json") as fh:
            payload = json.load(fh)
        assert payload["schema"] == "repro-optimize/1"
        assert payload["ok"] is True
        programs = [r["program"] for r in payload["rows"]]
        assert programs == ["fig8-cg", "fig8-bicgstab", "fig8-gmres"]

    def test_warning_gates_exit_code_and_allow_suppresses(self, capsys,
                                                          monkeypatch):
        # Inject a synthetic warning finding into an otherwise clean
        # report: exit 1 without --allow, exit 0 with it.
        from repro.analyze import driver as driver_mod
        from repro.analyze.checkers import Finding

        real = driver_mod.analyze_program

        def with_warning(*args, **kwargs):
            report = real(*args, **kwargs)
            report.findings.append(
                Finding("PLAN-TEST-WARN", "warning", "synthetic warning")
            )
            return report

        monkeypatch.setattr(driver_mod, "analyze_program", with_warning)
        monkeypatch.setattr("repro.analyze.analyze_program", with_warning)
        args = ["analyze", "cg", "--size", "16", "--pieces", "2",
                "--iterations", "1", "--no-dynamic"]
        assert main(args) == 1
        assert "GATE: " in capsys.readouterr().out
        assert main(args + ["--allow", "PLAN-TEST-WARN"]) == 0
