"""``repro lint``: one deliberately-broken fixture per REPRO rule, plus
pragma handling and the repo-wide cleanliness gate."""

import os
import textwrap

from repro.analyze import LINT_RULES, lint_paths, lint_source

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def lint(snippet, select=None):
    return lint_source(textwrap.dedent(snippet), path="fixture.py",
                       select=select)


def rules_of(violations):
    return [v.rule for v in violations]


class TestRepro001BodyAccessors:
    def test_accessor_not_rooted_at_context(self):
        violations = lint(
            """
            def make(region, acc):
                def body(ctx):
                    return acc.read(region)
                return TaskLauncher("t", body)
            """
        )
        assert rules_of(violations) == ["REPRO001"]
        assert "acc" in violations[0].message

    def test_context_rooted_accessor_passes(self):
        assert lint(
            """
            def make(region):
                def body(ctx):
                    values = ctx.accessor(0).read(region)
                    return values.sum()
                return TaskLauncher("t", body)
            """
        ) == []

    def test_local_alias_of_context_passes(self):
        assert lint(
            """
            def make(region):
                def body(ctx):
                    acc = ctx.accessor(0)
                    return acc.read(region)
                return TaskLauncher("t", body)
            """
        ) == []

    def test_alias_rebound_to_foreign_object_flagged(self):
        violations = lint(
            """
            def make(region, foreign):
                def body(ctx):
                    acc = ctx.accessor(0)
                    acc = foreign
                    return acc.read(region)
                return TaskLauncher("t", body)
            """
        )
        assert rules_of(violations) == ["REPRO001"]


class TestRepro002RawMutation:
    def test_module_level_raw_write(self):
        violations = lint(
            """
            store.raw(region, "v")[:] = 0.0
            """
        )
        assert rules_of(violations) == ["REPRO002"]

    def test_raw_read_is_fine(self):
        assert lint(
            """
            values = store.raw(region, "v")[:]
            """
        ) == []

    def test_raw_write_inside_body_is_fine(self):
        assert lint(
            """
            def body(ctx):
                ctx.store.raw(region, "v")[:] = 0.0
            """
        ) == []

    def test_augmented_assignment_flagged(self):
        violations = lint(
            """
            store.raw(region, "v")[3] += 1.0
            """
        )
        assert rules_of(violations) == ["REPRO002"]


class TestRepro003BlockingGet:
    def test_zero_arg_get_in_body(self):
        violations = lint(
            """
            def body(ctx):
                return fut.get()
            """
        )
        assert rules_of(violations) == ["REPRO003"]

    def test_dict_get_with_args_passes(self):
        assert lint(
            """
            def body(ctx):
                return ctx.kwargs.get("alpha", 1.0)
            """
        ) == []

    def test_get_outside_body_passes(self):
        assert lint(
            """
            def driver(fut):
                return fut.get()
            """
        ) == []


class TestRepro004MutableCaptures:
    def test_loop_target_capture(self):
        violations = lint(
            """
            def driver(rt, region):
                for i in range(4):
                    def body(ctx):
                        return i
                    rt.execute(TaskLauncher("t", body))
            """
        )
        assert rules_of(violations) == ["REPRO004"]
        assert "`i`" in violations[0].message

    def test_rebinding_after_definition(self):
        violations = lint(
            """
            def driver(rt):
                alpha = 1.0
                def body(ctx):
                    return alpha
                rt.execute(TaskLauncher("t", body))
                alpha = 2.0
            """
        )
        assert rules_of(violations) == ["REPRO004"]

    def test_stable_binding_passes(self):
        assert lint(
            """
            def driver(rt, alpha):
                beta = alpha * 2
                def body(ctx):
                    return alpha + beta
                rt.execute(TaskLauncher("t", body))
            """
        ) == []

    def test_default_argument_escape_hatch_passes(self):
        assert lint(
            """
            def driver(rt):
                for i in range(4):
                    def body(ctx, i=i):
                        return i
                    rt.execute(TaskLauncher("t", body))
            """
        ) == []


class TestLintMachinery:
    def test_lambda_passed_to_tasklauncher_is_a_body(self):
        violations = lint(
            """
            def driver(rt, fut):
                rt.execute(TaskLauncher("t", lambda ctx: fut.get()))
            """
        )
        assert rules_of(violations) == ["REPRO003"]

    def test_body_kwarg_recognized(self):
        violations = lint(
            """
            def driver(rt, fut):
                def run_later(ctx):
                    return fut.get()
                rt.execute(TaskLauncher("t", body=run_later))
            """
        )
        assert rules_of(violations) == ["REPRO003"]

    def test_pragma_disables_specific_rule(self):
        assert lint(
            """
            store.raw(region, "v")[:] = 0.0  # repro-lint: disable=REPRO002
            """
        ) == []

    def test_bare_pragma_disables_all(self):
        assert lint(
            """
            store.raw(region, "v")[:] = 0.0  # repro-lint: disable
            """
        ) == []

    def test_pragma_for_other_rule_does_not_mask(self):
        violations = lint(
            """
            store.raw(region, "v")[:] = 0.0  # repro-lint: disable=REPRO003
            """
        )
        assert rules_of(violations) == ["REPRO002"]

    def test_select_restricts_rules(self):
        snippet = """
            def body(ctx):
                return fut.get()
            store.raw(region, "v")[:] = 0.0
            """
        assert rules_of(lint(snippet)) == ["REPRO003", "REPRO002"]
        assert rules_of(lint(snippet, select=["REPRO002"])) == ["REPRO002"]

    def test_syntax_error_reported_not_raised(self):
        violations = lint("def broken(:\n")
        assert rules_of(violations) == ["REPRO000"]

    def test_rule_table_documents_all_rules(self):
        assert sorted(LINT_RULES) == [
            "REPRO001", "REPRO002", "REPRO003", "REPRO004", "REPRO005"
        ]


class TestRepoIsClean:
    def test_src_and_examples_lint_clean(self):
        """Acceptance criterion: `repro lint` runs clean on the shipped
        sources."""
        paths = [os.path.join(REPO_ROOT, "src"), os.path.join(REPO_ROOT, "examples")]
        assert lint_paths(paths) == []
