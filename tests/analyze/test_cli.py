"""The ``repro analyze`` and ``repro lint`` CLI subcommands."""

import json

from repro.cli import main


class TestAnalyzeCommand:
    def test_clean_program_exits_zero(self, capsys):
        rc = main(["analyze", "cg", "--size", "16", "--pieces", "2",
                   "--iterations", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "superset oracle: VERIFIED" in out
        assert "result: OK" in out

    def test_json_report_written(self, capsys, tmp_path):
        out = tmp_path / "report.json"
        rc = main(["analyze", "cg", "--size", "16", "--pieces", "2",
                   "--iterations", "1", "--json", str(out)])
        assert rc == 0
        payload = json.loads(out.read_text())
        assert payload["program"] == "cg"
        assert payload["ok"] is True
        assert payload["superset_verified"] is True
        assert payload["n_static_edges"] >= payload["n_dynamic_edges"]

    def test_no_dynamic_skips_oracle(self, capsys):
        rc = main(["analyze", "cg", "--size", "16", "--pieces", "2",
                   "--iterations", "1", "--no-dynamic"])
        assert rc == 0
        assert "superset oracle: skipped" in capsys.readouterr().out

    def test_fig8_program(self, capsys):
        rc = main(["analyze", "fig8-cg", "--size", "16", "--pieces", "2",
                   "--iterations", "1"])
        assert rc == 0

    def test_unknown_program_exits_two(self, capsys):
        rc = main(["analyze", "not-a-program"])
        assert rc == 2
        assert "unknown program" in capsys.readouterr().out

    def test_verbose_prints_histogram(self, capsys):
        rc = main(["analyze", "cg", "--size", "16", "--pieces", "2",
                   "--iterations", "1", "--verbose"])
        assert rc == 0
        assert "× " in capsys.readouterr().out


class TestLintCommand:
    def test_clean_file_exits_zero(self, capsys, tmp_path):
        f = tmp_path / "clean.py"
        f.write_text("def body(ctx):\n    return ctx.accessor(0).read(None)\n")
        rc = main(["lint", str(f)])
        assert rc == 0
        assert "0 violations" in capsys.readouterr().out

    def test_violations_exit_one_and_are_listed(self, capsys, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text("def body(ctx):\n    return fut.get()\n")
        rc = main(["lint", str(f)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REPRO003" in out
        assert "1 violation" in out

    def test_select_filters_rules(self, capsys, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text(
            "def body(ctx):\n"
            "    return fut.get()\n"
            "store.raw(region, 'v')[:] = 0.0\n"
        )
        rc = main(["lint", str(f), "--select", "REPRO002"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "REPRO002" in out
        assert "REPRO003" not in out

    def test_missing_file_exits_two(self, capsys, tmp_path):
        rc = main(["lint", str(tmp_path / "does-not-exist.py")])
        assert rc == 2
