"""Static checkers over captured plans: privilege hygiene, the §4
may-conflict superset oracle, §3.1 co-partitions, and dead-code
reporting."""

import numpy as np
import pytest

from repro.analyze import (
    analyze_program,
    capture_plan,
    check_copartitions,
    check_dead_code,
    check_privileges,
    static_interference_edges,
    verify_interference_superset,
)
from repro.api import make_planner
from repro.core.solvers import SOLVER_REGISTRY
from repro.problems.generators import tridiagonal_toeplitz
from repro.runtime import (
    IndexSpace,
    Partition,
    Privilege,
    ProcKind,
    Runtime,
    Subset,
    TaskLauncher,
)
from repro.verify import attach_race_detector


def launch(rt, name, region, subset, privilege, redop="+", deps=(), reqs=()):
    tl = TaskLauncher(name, lambda ctx: None, proc_kind=ProcKind.CPU,
                      future_deps=list(deps))
    tl.add_requirement(region, ["v"], subset, privilege, redop=redop)
    for extra_subset, extra_priv in reqs:
        tl.add_requirement(region, ["v"], extra_subset, extra_priv)
    return rt.execute(tl)


def plan_of(build):
    """Capture the plan of a program closure taking (rt, region, part)."""
    def program(rt):
        region = rt.create_region(IndexSpace.linear(64), {"v": np.float64})
        rt.allocate(region, "v")
        part = Partition.equal(region.ispace, 4)
        build(rt, region, part)

    return capture_plan(program)


def codes(findings):
    return [f.code for f in findings]


class TestPrivilegeChecker:
    def test_clean_plan_has_no_findings(self):
        plan = plan_of(lambda rt, region, part: (
            launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD),
            launch(rt, "r", region, part[0], Privilege.READ_ONLY),
        ))
        assert check_privileges(plan) == []

    def test_reduce_without_redop_is_error(self):
        plan = plan_of(lambda rt, region, part: launch(
            rt, "red", region, part[0], Privilege.REDUCE, redop=""
        ))
        findings = check_privileges(plan)
        assert codes(findings) == ["PLAN-PRIV-REDOP"]
        assert findings[0].severity == "error"
        assert "red" in findings[0].message

    def test_empty_subset_is_warning(self):
        plan = plan_of(lambda rt, region, part: launch(
            rt, "noop", region, Subset.empty(region.ispace),
            Privilege.READ_ONLY
        ))
        findings = check_privileges(plan)
        assert codes(findings) == ["PLAN-PRIV-EMPTY"]
        assert findings[0].severity == "warning"

    def test_write_overlapping_read_only_in_same_task(self):
        plan = plan_of(lambda rt, region, part: launch(
            rt, "mixed", region, part[0], Privilege.WRITE_DISCARD,
            reqs=[(part[0], Privilege.READ_ONLY)]
        ))
        findings = check_privileges(plan)
        assert codes(findings) == ["PLAN-PRIV-SUBSUME"]

    def test_disjoint_write_and_read_in_same_task_pass(self):
        plan = plan_of(lambda rt, region, part: launch(
            rt, "mixed", region, part[0], Privilege.WRITE_DISCARD,
            reqs=[(part[1], Privilege.READ_ONLY)]
        ))
        assert check_privileges(plan) == []


class TestStaticInterference:
    def test_overlapping_write_read_is_an_edge(self):
        plan = plan_of(lambda rt, region, part: (
            launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD),
            launch(rt, "r", region, part[0], Privilege.READ_ONLY),
        ))
        assert (0, 1) in static_interference_edges(plan)

    def test_disjoint_writers_are_not_an_edge(self):
        plan = plan_of(lambda rt, region, part: (
            launch(rt, "w0", region, part[0], Privilege.WRITE_DISCARD),
            launch(rt, "w1", region, part[1], Privilege.WRITE_DISCARD),
        ))
        assert static_interference_edges(plan) == set()

    def test_readers_never_conflict(self):
        plan = plan_of(lambda rt, region, part: (
            launch(rt, "r0", region, part[0], Privilege.READ_ONLY),
            launch(rt, "r1", region, part[0], Privilege.READ_ONLY),
        ))
        assert static_interference_edges(plan) == set()

    def test_same_redop_reductions_commute(self):
        plan = plan_of(lambda rt, region, part: (
            launch(rt, "a", region, part[0], Privilege.REDUCE, redop="+"),
            launch(rt, "b", region, part[0], Privilege.REDUCE, redop="+"),
        ))
        assert static_interference_edges(plan) == set()

    def test_different_redop_reductions_conflict(self):
        plan = plan_of(lambda rt, region, part: (
            launch(rt, "a", region, part[0], Privilege.REDUCE, redop="+"),
            launch(rt, "b", region, part[0], Privilege.REDUCE, redop="max"),
        ))
        assert (0, 1) in static_interference_edges(plan)

    def test_future_edge_included(self):
        def build(rt, region, part):
            f = launch(rt, "p", region, part[0], Privilege.READ_ONLY)
            launch(rt, "c", region, part[1], Privilege.READ_ONLY, deps=[f])

        assert (0, 1) in static_interference_edges(plan_of(build))


class TestSupersetOracle:
    def run_both(self, program):
        plan = capture_plan(program)
        rt = Runtime()
        det = attach_race_detector(rt)
        program(rt)
        rt.sync()
        return plan, det

    def solver_program(self, solver, fmt_matrix, n=16, pieces=2):
        def program(rt):
            planner = make_planner(fmt_matrix, np.ones(n), n_pieces=pieces,
                                   runtime=rt)
            SOLVER_REGISTRY[solver](planner).run_fixed(2)

        return program

    @pytest.mark.parametrize("fmt", ["csr", "ell", "dense"])
    def test_cg_static_edges_cover_dynamic_edges(self, fmt):
        """Acceptance criterion: the static may-conflict set is a
        verified superset of the engine's dynamic edges, across multiple
        storage formats."""
        from repro.verify.oracle import build_format, seeded_problem

        A = build_format(fmt, seeded_problem(0, 16).matrix)
        plan, det = self.run_both(self.solver_program("cg", A))
        names = [det.task_name(t) for t in det.task_ids()]
        verified, findings = verify_interference_superset(
            plan, det.task_ids(), det.edges(), names
        )
        assert verified is True
        assert findings == []

    def test_stream_divergence_skips_check(self):
        plan = plan_of(lambda rt, region, part: launch(
            rt, "w", region, part[0], Privilege.WRITE_DISCARD
        ))
        verified, findings = verify_interference_superset(
            plan, [1, 2], [(1, 2)], None
        )
        assert verified is None
        assert codes(findings) == ["PLAN-INTERFERE-STREAM"]

    def test_missing_static_edge_is_unsound(self):
        # Two disjoint writers: statically no edge.  Fabricate a dynamic
        # edge between them and the oracle must flag unsoundness.
        plan = plan_of(lambda rt, region, part: (
            launch(rt, "w0", region, part[0], Privilege.WRITE_DISCARD),
            launch(rt, "w1", region, part[1], Privilege.WRITE_DISCARD),
        ))
        ids = plan.order
        verified, findings = verify_interference_superset(
            plan, ids, [(ids[0], ids[1])], plan.names()
        )
        assert verified is False
        assert codes(findings) == ["PLAN-INTERFERE-MISSING"]
        assert findings[0].severity == "error"


class TestCopartitionChecker:
    def test_stock_planner_is_compatible(self):
        rt = Runtime(backend="capture")
        A = tridiagonal_toeplitz(20)
        planner = make_planner(A, np.ones(20), n_pieces=4, runtime=rt,
                               preconditioner="jacobi")
        assert check_copartitions(planner) == []


class TestDeadCodeReport:
    def test_write_fully_overwritten_before_read(self):
        plan = plan_of(lambda rt, region, part: (
            launch(rt, "w_dead", region, part[0], Privilege.WRITE_DISCARD),
            launch(rt, "w_live", region, part[0], Privilege.WRITE_DISCARD),
            launch(rt, "r", region, part[0], Privilege.READ_ONLY),
        ))
        dead_writes = [f for f in check_dead_code(plan)
                       if f.code == "PLAN-DEAD-WRITE"]
        assert len(dead_writes) == 1
        assert "w_dead" in dead_writes[0].message

    def test_fill_reported_with_its_own_code(self):
        plan = plan_of(lambda rt, region, part: (
            launch(rt, "fill", region, part[0], Privilege.WRITE_DISCARD),
            launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD),
        ))
        findings = check_dead_code(plan)
        assert "PLAN-DEAD-FILL" in codes(findings)

    def test_read_keeps_write_alive(self):
        plan = plan_of(lambda rt, region, part: (
            launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD),
            launch(rt, "r", region, part[0], Privilege.READ_ONLY),
            launch(rt, "w2", region, part[0], Privilege.WRITE_DISCARD),
        ))
        assert [f for f in check_dead_code(plan) if f.code == "PLAN-DEAD-WRITE"] == []

    def test_partial_overwrite_is_live(self):
        def build(rt, region, part):
            full = Subset.full(region.ispace)
            launch(rt, "w_full", region, full, Privilege.WRITE_DISCARD)
            launch(rt, "w_part", region, part[0], Privilege.WRITE_DISCARD)

        assert [f for f in check_dead_code(plan_of(build))
                if f.code == "PLAN-DEAD-WRITE"] == []

    def test_unconsumed_read_only_future_is_info(self):
        plan = plan_of(lambda rt, region, part: launch(
            rt, "dot", region, part[0], Privilege.READ_ONLY
        ))
        findings = check_dead_code(plan)
        assert codes(findings) == ["PLAN-DEAD-TASK"]
        assert findings[0].severity == "info"


class TestAnalyzeDriver:
    @pytest.mark.parametrize("fmt", ["csr", "coo"])
    def test_cg_report_is_clean_across_formats(self, fmt):
        report = analyze_program("cg", fmt=fmt, size=16, pieces=2,
                                 iterations=2)
        assert report.superset_verified is True
        assert report.errors == []
        assert report.ok
        assert report.n_static_edges >= report.n_dynamic_edges > 0

    def test_fig8_program(self):
        report = analyze_program("fig8-cg", size=16, pieces=2, iterations=1)
        assert report.ok
        assert report.superset_verified is True

    def test_report_json_round_trips(self):
        import json

        report = analyze_program("cg", size=16, pieces=2, iterations=1,
                                 dynamic=False)
        payload = json.loads(report.to_json())
        assert payload["program"] == "cg"
        assert payload["n_tasks"] == report.n_tasks

    def test_unknown_program_raises(self):
        with pytest.raises(KeyError):
            analyze_program("not-a-solver")
