"""Symbolic capture backend: task bodies never run, futures resolve to
symbolic values, and the recorded plan matches the dynamic stream."""

import numpy as np
import pytest

from repro.api import make_planner
from repro.core.solvers import SOLVER_REGISTRY
from repro.core.solvers.base import SYMBOLIC_ITERATION_BOUND
from repro.analyze import PlanGraph, attach_plan_capture, capture_plan
from repro.problems.generators import tridiagonal_toeplitz
from repro.runtime import (
    CaptureExecutor,
    IndexSpace,
    Partition,
    Privilege,
    ProcKind,
    Runtime,
    Subset,
    SymbolicValue,
    TaskLauncher,
)


def launch(rt, name, region, subset, privilege, body=None, deps=()):
    tl = TaskLauncher(name, body or (lambda ctx: None), proc_kind=ProcKind.CPU,
                      future_deps=list(deps))
    tl.add_requirement(region, ["v"], subset, privilege)
    return rt.execute(tl)


class TestSymbolicValue:
    def test_floats_to_finite_one(self):
        v = SymbolicValue(7, "dot")
        assert float(v) == 1.0
        assert np.isfinite(float(v))

    def test_arithmetic_stays_symbolic(self):
        v = SymbolicValue(1, "norm")
        for derived in (v + 2.0, 2.0 + v, v - 1, 1 - v, v * 3, 3 * v,
                        v / 2, 2 / v, -v):
            assert isinstance(derived, SymbolicValue)


class TestCaptureExecutor:
    def test_bodies_never_execute(self):
        rt = Runtime(backend="capture")
        region = rt.create_region(IndexSpace.linear(16), {"v": np.float64})
        rt.allocate(region, "v")
        sub = Subset.full(region.ispace)

        def explode(ctx):
            raise AssertionError("body must not run under capture")

        launch(rt, "boom", region, sub, Privilege.WRITE_DISCARD, body=explode)
        rt.sync()  # would re-raise if the body had run

    def test_futures_resolve_symbolically(self):
        rt = Runtime(backend="capture")
        region = rt.create_region(IndexSpace.linear(8), {"v": np.float64})
        rt.allocate(region, "v")
        f = launch(rt, "dot", region, Subset.full(region.ispace),
                   Privilege.READ_ONLY, body=lambda ctx: 42.0)
        value = f.get()
        assert isinstance(value, SymbolicValue)
        assert value.name == "dot"
        assert float(value) == 1.0

    def test_counts_captured_tasks(self):
        rt = Runtime(backend="capture")
        assert isinstance(rt.executor, CaptureExecutor)
        region = rt.create_region(IndexSpace.linear(8), {"v": np.float64})
        rt.allocate(region, "v")
        for i in range(5):
            launch(rt, f"t{i}", region, Subset.full(region.ispace),
                   Privilege.READ_WRITE)
        assert rt.executor.n_captured == 5


class TestPlanCapture:
    def test_capture_plan_records_stream(self):
        def program(rt):
            region = rt.create_region(IndexSpace.linear(32), {"v": np.float64})
            rt.allocate(region, "v")
            part = Partition.equal(region.ispace, 2)
            f = launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD)
            rt.fence()
            launch(rt, "r", region, part[0], Privilege.READ_ONLY, deps=[f])

        plan = capture_plan(program)
        assert isinstance(plan, PlanGraph)
        assert len(plan) == 2
        assert plan.names() == ["w", "r"]
        assert plan.n_fences == 1
        w, r = list(plan)
        assert w.fence_epoch == 0 and r.fence_epoch == 1
        assert w.requirements[0].privilege is Privilege.WRITE_DISCARD
        assert (w.task_id, r.task_id) in plan.future_edges()

    def test_capture_matches_dynamic_stream_for_cg(self):
        A = tridiagonal_toeplitz(16)
        b = np.ones(16)

        def program(rt):
            planner = make_planner(A, b, n_pieces=2, runtime=rt)
            SOLVER_REGISTRY["cg"](planner).run_fixed(2)

        plan = capture_plan(program)

        rt = Runtime()  # serial: bodies actually run
        cap = attach_plan_capture(rt)
        program(rt)
        rt.sync()
        assert plan.names() == cap.plan.names()

    @pytest.mark.parametrize("solver", sorted(SOLVER_REGISTRY))
    def test_every_stock_solver_captures(self, solver):
        A = tridiagonal_toeplitz(12)
        b = np.ones(12)

        def program(rt):
            planner = make_planner(
                A, b, n_pieces=2, runtime=rt,
                preconditioner="jacobi" if solver == "pcg" else None,
            )
            SOLVER_REGISTRY[solver](planner).run_fixed(1)

        plan = capture_plan(program)
        assert len(plan) > 0
        assert plan.n_edges > 0


class TestSymbolicPlannerMode:
    def make_symbolic_planner(self):
        rt = Runtime(backend="capture")
        A = tridiagonal_toeplitz(12)
        return make_planner(A, np.ones(12), n_pieces=2, runtime=rt)

    def test_planner_flags_symbolic(self):
        planner = self.make_symbolic_planner()
        assert planner.symbolic
        rt = Runtime()
        A = tridiagonal_toeplitz(12)
        assert not make_planner(A, np.ones(12), n_pieces=2, runtime=rt).symbolic

    def test_solve_is_bounded_under_symbolic(self):
        planner = self.make_symbolic_planner()
        result = SOLVER_REGISTRY["cg"](planner).solve(
            tolerance=1e-8, max_iterations=1000
        )
        # Scalars are the constant 1.0 > tol: without the bound this
        # would record 1000 iterations.
        assert result.iterations == SYMBOLIC_ITERATION_BOUND
        assert not result.converged

    def test_get_array_refuses_symbolic_data(self):
        planner = self.make_symbolic_planner()
        with pytest.raises(RuntimeError, match="capture"):
            planner.get_array(planner.SOL)
        with pytest.raises(RuntimeError, match="capture"):
            planner.set_array(planner.SOL, np.zeros(12))
