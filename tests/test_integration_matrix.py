"""Cross-product integration: every solver × every storage format.

The P2 claim at full strength: the solver stack is completely oblivious
to the storage format, so the full cross product must converge to the
same answer.  (CG-family solvers run on an SPD system, the general
family on a nonsymmetric one; adjoint-needing solvers skip formats whose
transpose kernels are exercised elsewhere.)
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import solve
from repro.problems import random_diag_dominant, tridiagonal_toeplitz
from repro.runtime import lassen
from repro.sparse import ALL_FORMATS, COOMatrix

FORMAT_IDS = [name for name, _ in ALL_FORMATS]
SPD_SOLVERS = ["cg", "minres"]
GENERAL_SOLVERS = ["bicgstab", "gmres", "tfqmr", "bicg", "cgnr"]


def build(convert, scipy_matrix):
    return convert(COOMatrix.from_scipy(scipy_matrix))


@pytest.mark.parametrize(("fmt", "convert"), ALL_FORMATS, ids=FORMAT_IDS)
@pytest.mark.parametrize("solver", SPD_SOLVERS)
def test_spd_solver_on_every_format(fmt, convert, solver, rng):
    A = tridiagonal_toeplitz(48)
    m = build(convert, A)
    b = rng.normal(size=48)
    x, result = solve(m, b, solver=solver, tolerance=1e-9, max_iterations=500,
                      machine=lassen(1))
    assert result.converged, f"{solver} on {fmt}"
    assert np.linalg.norm(A @ x - b) < 1e-7, f"{solver} on {fmt}"


@pytest.mark.parametrize(("fmt", "convert"), ALL_FORMATS[:6], ids=FORMAT_IDS[:6])
@pytest.mark.parametrize("solver", GENERAL_SOLVERS)
def test_general_solver_on_formats(fmt, convert, solver, rng):
    A = random_diag_dominant(40, density=0.15, seed=1)
    m = build(convert, A.tocsr())
    b = rng.normal(size=40)
    x, result = solve(m, b, solver=solver, tolerance=1e-9, max_iterations=800,
                      machine=lassen(1))
    assert result.converged, f"{solver} on {fmt}"
    assert np.linalg.norm(A @ x - b) < 1e-6, f"{solver} on {fmt}"


@pytest.mark.parametrize(("fmt", "convert"), ALL_FORMATS, ids=FORMAT_IDS)
def test_all_formats_same_iteration_count(fmt, convert, rng):
    """CG's iteration trajectory is a property of the *operator*, not
    its storage: every format takes the identical number of iterations
    and produces the same residual history."""
    A = tridiagonal_toeplitz(32)
    b = np.sin(np.arange(32))
    m = build(convert, A)
    _, result = solve(m, b.copy(), solver="cg", tolerance=1e-10,
                      max_iterations=200, machine=lassen(1))
    _, ref_result = solve(A, b.copy(), solver="cg", tolerance=1e-10,
                          max_iterations=200, machine=lassen(1))
    assert result.iterations == ref_result.iterations
    np.testing.assert_allclose(
        result.measure_history, ref_result.measure_history, rtol=1e-8
    )
