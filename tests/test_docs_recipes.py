"""The extension recipes in docs/extending.md, executed verbatim.

If these tests fail, the documentation is lying — the strongest kind of
doc test short of literate programming.
"""

import numpy as np

from repro.api import make_planner
from repro.core.planner import RHS, SOL
from repro.core.solvers.base import KrylovSolver
from repro.runtime import ComputedRelation, IndexSpace, Partition, lassen
from repro.sparse import SparseFormat


# --- the "new storage format" recipe -----------------------------------------


class DiagonalOnly(SparseFormat):
    """Stores only the main diagonal (a 1-diagonal DIA)."""

    def __init__(self, diag):
        diag = np.asarray(diag, dtype=np.float64)
        n = diag.size
        D = IndexSpace.linear(n, name="D")
        K = IndexSpace.linear(n, name="K_diag")
        super().__init__(K, D, D)
        self.entries = diag

    @property
    def col_relation(self):
        return ComputedRelation(
            self.kernel_space,
            self.domain_space,
            forward=lambda k: k,
            backward=lambda j: np.asarray(j),
        )

    @property
    def row_relation(self):
        return self.col_relation

    def triplets(self, kernel_indices=None):
        k = (
            np.arange(self.nnz)
            if kernel_indices is None
            else np.asarray(kernel_indices)
        )
        return k, k, self.entries[k]


# --- the "new solver" recipe ---------------------------------------------------


class Richardson(KrylovSolver):
    name = "richardson"

    def __init__(self, planner, omega=0.5):
        super().__init__(planner)
        self.omega = omega
        self.R = planner.allocate_workspace_vector()
        planner.matmul(self.R, SOL)
        planner.xpay(self.R, -1.0, RHS)   # r ← b − A x₀

    def step(self):
        p = self.planner
        p.axpy(SOL, self.omega, self.R)   # x ← x + ω r
        p.matmul(self.R, SOL)
        p.xpay(self.R, -1.0, RHS)         # r ← b − A x

    def get_convergence_measure(self):
        return float(self.planner.norm(self.R).value)


class TestFormatRecipe:
    def test_semantics(self, rng):
        diag = rng.uniform(1.0, 2.0, size=32)
        m = DiagonalOnly(diag)
        x = rng.normal(size=32)
        np.testing.assert_allclose(m.spmv(x), diag * x)
        np.testing.assert_allclose(np.diag(m.to_dense()), diag)

    def test_copartitioning_applies(self, rng):
        from repro.core.projection import matvec_copartition

        m = DiagonalOnly(rng.uniform(1.0, 2.0, size=32))
        P = Partition.equal(m.range_space, 4)
        KP, DP = matvec_copartition(m, P)
        for c in range(4):
            np.testing.assert_array_equal(DP[c].indices, P[c].indices)

    def test_solver_stack_accepts_it(self, rng):
        diag = rng.uniform(1.0, 2.0, size=64)
        m = DiagonalOnly(diag)
        b = rng.normal(size=64)
        from repro.api import solve

        x, result = solve(m, b, solver="cg", tolerance=1e-12, machine=lassen(1))
        assert result.converged
        np.testing.assert_allclose(x, b / diag, atol=1e-10)


class TestSolverRecipe:
    def test_richardson_converges_on_contractive_system(self, rng):
        import scipy.sparse as sp

        n = 48
        # I + small perturbation: Richardson with ω = 1 converges fast.
        A = (sp.identity(n) + 0.1 * sp.random(
            n, n, density=0.1, random_state=np.random.default_rng(3)
        )).tocsr()
        b = rng.normal(size=n)
        planner = make_planner(A, b, machine=lassen(1))
        solver = Richardson(planner, omega=1.0)
        result = solver.solve(tolerance=1e-10, max_iterations=300)
        assert result.converged
        x = planner.get_array(SOL)
        assert np.linalg.norm(A @ x - b) < 1e-8

    def test_traces_replay_across_iterations(self, rng):
        import scipy.sparse as sp

        A = (sp.identity(32) * 2.0).tocsr()
        planner = make_planner(A, rng.normal(size=32), machine=lassen(1))
        solver = Richardson(planner)
        solver.run_fixed(5)
        assert planner.runtime.engine.n_traced_tasks > 0
