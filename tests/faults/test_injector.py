"""FaultInjector: submit-time matching, crash/stall/corrupt behaviour,
runtime wiring (env vars, backend preservation, timeline events)."""

import numpy as np
import pytest

from repro.faults import FaultPlan, InjectedTaskFault, is_injected_fault
from repro.faults.injector import FaultInjector
from repro.runtime import (
    ExecutorError,
    IndexSpace,
    Privilege,
    Runtime,
    Subset,
    TaskLauncher,
)


def make_runtime(plan=None, backend="serial", **kwargs):
    faults = plan if plan is not None else False
    return Runtime(backend=backend, faults=faults, **kwargs)


def writer(rt, region, name="work", value=1.0, subset=None, deps=()):
    def body(ctx):
        ctx[0].write(np.full(ctx[0].read().shape, value))
        return value

    tl = TaskLauncher(name, body, future_deps=list(deps))
    tl.add_requirement(
        region, ["v"], subset or Subset.full(region.ispace), Privilege.READ_WRITE
    )
    return rt.execute(tl)


def reader(rt, region, name="peek"):
    tl = TaskLauncher(name, lambda ctx: float(ctx[0].read().sum()))
    tl.add_requirement(region, ["v"], Subset.full(region.ispace), Privilege.READ_ONLY)
    return rt.execute(tl)


@pytest.fixture
def region_for():
    def build(rt, n=16):
        region = rt.create_region(IndexSpace.linear(n), {"v": np.float64})
        rt.allocate(region, "v", fill=0.0)
        return region

    return build


class TestSubmitTimeMatching:
    def test_counts_per_pattern_in_launch_order(self, region_for):
        plan = FaultPlan.parse("crash:work:2")
        rt = make_runtime(plan)
        region = region_for(rt)
        for _ in range(4):
            writer(rt, region, "work")
        events = rt.fault_log.events
        assert len(events) == 1
        assert events[0].task_name == "work"
        assert events[0].spec.launch_index == 2

    def test_glob_patterns_match(self, region_for):
        plan = FaultPlan.parse("stall:wo*:0:1")
        rt = make_runtime(plan)
        region = region_for(rt)
        writer(rt, region, "other")
        writer(rt, region, "work")
        [event] = rt.fault_log.events
        assert event.task_name == "work"

    def test_unmatched_plan_logs_nothing(self, region_for):
        plan = FaultPlan.parse("crash:never_launched:0")
        rt = make_runtime(plan)
        region = region_for(rt)
        writer(rt, region)
        rt.sync()
        assert rt.fault_log.events == []

    def test_two_specs_can_hit_one_task(self, region_for):
        plan = FaultPlan.parse("stall:work:0:1; corrupt:work:0:nan")
        rt = make_runtime(plan)
        region = region_for(rt)
        writer(rt, region)
        rt.sync()
        assert rt.fault_log.n_injected == 2


class TestCrash:
    def test_retry_is_transparent(self, region_for):
        plan = FaultPlan.parse("crash:work:0", retry_crashes=True)
        rt = make_runtime(plan)
        region = region_for(rt)
        writer(rt, region, value=3.0)
        rt.sync()
        assert reader(rt, region).get() == pytest.approx(48.0)  # body did run
        [event] = rt.fault_log.events
        assert event.recovered and event.recovery == "retry"
        assert event.detected_by == "retry"

    def test_no_retry_raises_synchronously_on_serial(self, region_for):
        plan = FaultPlan.parse("crash:work:0", retry_crashes=False)
        rt = make_runtime(plan)
        region = region_for(rt)
        with pytest.raises(InjectedTaskFault) as excinfo:
            writer(rt, region)
        assert is_injected_fault(excinfo.value)
        assert excinfo.value.event.spec.kind == "crash"

    def test_no_retry_surfaces_as_executor_error_on_threads(self, region_for):
        plan = FaultPlan.parse("crash:work:0", retry_crashes=False)
        rt = make_runtime(plan, backend="threads", jobs=2)
        try:
            region = region_for(rt)
            writer(rt, region)
            with pytest.raises(ExecutorError) as excinfo:
                rt.sync()
            assert is_injected_fault(excinfo.value)
        finally:
            rt.executor.shutdown()

    def test_genuine_errors_are_not_injected_faults(self):
        assert not is_injected_fault(ValueError("boom"))
        wrapped = ExecutorError("task died")
        wrapped.__cause__ = RuntimeError("genuine")
        assert not is_injected_fault(wrapped)


class TestStall:
    def test_stall_completes_late_and_is_logged(self, region_for):
        plan = FaultPlan.parse("stall:work:0:1")
        rt = make_runtime(plan)
        region = region_for(rt, n=8)
        writer(rt, region, value=2.0)
        rt.sync()
        [event] = rt.fault_log.events
        assert event.applied and event.recovered
        assert event.recovery == "completed"
        assert "1ms late" in event.detail
        assert reader(rt, region).get() == pytest.approx(16.0)

    def test_stalled_set_empty_after_completion(self, region_for):
        plan = FaultPlan.parse("stall:work:0:1")
        rt = make_runtime(plan)
        region = region_for(rt)
        writer(rt, region)
        rt.sync()
        assert rt.executor.currently_stalled() == set()


class TestCorrupt:
    def test_nan_poisons_one_written_element(self, region_for):
        plan = FaultPlan.parse("corrupt:work:0:nan", seed=3)
        rt = make_runtime(plan)
        region = region_for(rt)
        writer(rt, region, value=1.0)
        rt.sync()
        values = rt.store.raw(region, "v")
        assert np.isnan(values).sum() == 1
        [event] = rt.fault_log.events
        assert event.applied
        assert "<- nan" in event.detail

    def test_corruption_respects_the_task_subset(self, region_for):
        plan = FaultPlan.parse("corrupt:work:0:nan", seed=5)
        rt = make_runtime(plan)
        region = region_for(rt, n=16)
        lo = Subset.interval(region.ispace, 0, 7)
        writer(rt, region, subset=lo)
        rt.sync()
        values = rt.store.raw(region, "v")
        assert np.isnan(values[:8]).sum() == 1
        assert not np.isnan(values[8:]).any()

    def test_bitflip_changes_value_without_nan(self, region_for):
        plan = FaultPlan.parse("corrupt:work:0:bitflip", seed=3)
        rt = make_runtime(plan)
        region = region_for(rt)
        writer(rt, region, value=1.0)
        rt.sync()
        values = rt.store.raw(region, "v")
        assert not np.isnan(values).any()
        assert (values != 1.0).sum() == 1
        [event] = rt.fault_log.events
        assert "<- bitflip" in event.detail

    def test_corrupt_element_choice_is_seeded(self, region_for):
        def poisoned_index(seed):
            plan = FaultPlan.parse("corrupt:work:0:nan", seed=seed)
            rt = make_runtime(plan)
            region = region_for(rt)
            writer(rt, region)
            rt.sync()
            return int(np.flatnonzero(np.isnan(rt.store.raw(region, "v")))[0])

        assert poisoned_index(3) == poisoned_index(3)
        assert {poisoned_index(s) for s in range(8)} != {poisoned_index(3)}

    def test_read_only_task_has_nothing_to_corrupt(self, region_for):
        plan = FaultPlan.parse("corrupt:peek:0:nan")
        rt = make_runtime(plan)
        region = region_for(rt)
        writer(rt, region, value=4.0)
        assert reader(rt, region).get() == pytest.approx(64.0)
        rt.sync()
        [event] = rt.fault_log.events
        assert not event.applied
        assert "no writable subset" in event.detail
        assert rt.fault_log.n_injected == 0


class TestRuntimeWiring:
    def test_faults_param_wraps_executor(self):
        rt = make_runtime(FaultPlan.parse("crash:x:0"))
        assert isinstance(rt.executor, FaultInjector)
        assert rt.fault_injector is rt.executor
        assert rt.backend == "serial"  # inner backend name preserved

    def test_faults_false_disables_even_with_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:work:0")
        rt = Runtime(faults=False)
        assert rt.fault_injector is None
        assert rt.fault_log is None

    def test_env_var_activates_injection(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "crash:work:1")
        monkeypatch.setenv("REPRO_FAULT_SEED", "6")
        rt = Runtime()
        assert isinstance(rt.executor, FaultInjector)
        assert rt.executor.plan.seed == 6

    def test_plan_string_accepted_directly(self):
        rt = Runtime(faults="stall:spmv_*:0:2")
        assert rt.fault_injector is not None
        assert rt.fault_injector.plan.specs[0].kind == "stall"

    def test_bogus_faults_value_rejected(self):
        with pytest.raises(TypeError, match="faults"):
            Runtime(faults=123)

    def test_threads_backend_gets_stall_monitor(self):
        rt = make_runtime(FaultPlan.parse("stall:work:0:1"), backend="threads", jobs=2)
        try:
            assert rt.executor.inner.stall_monitor == rt.executor.currently_stalled
        finally:
            rt.executor.shutdown()

    def test_injection_events_land_in_timeline(self, region_for):
        plan = FaultPlan.parse("crash:work:1; corrupt:work:2:nan")
        rt = make_runtime(plan, keep_timeline=True)
        region = region_for(rt)
        for _ in range(3):
            writer(rt, region)
        rt.sync()
        names = [entry.name for entry in rt.engine.timeline]
        assert "fault:crash:work" in names
        assert "fault:corrupt:work" in names
