"""Seeded property tests: fault injection and recovery are a pure
function of (plan, seed, backend) — and backend-independent.

Recovery traces compare via ``trace_tuple()``, which deliberately
excludes process-global identifiers (task ids, auto-generated region
names); everything else — injection sites, detection attribution,
recovery actions, iteration counts, final bits — must match exactly.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan, FaultSpec, default_chaos_plan
from repro.faults.chaos import run_chaos

FEW = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)
solvers = st.sampled_from(["cg", "bicgstab", "cgs"])
payloads = st.sampled_from(["nan", "bitflip"])


class TestPlanDeterminism:
    @FEW
    @given(seed=seeds, payload=payloads)
    def test_default_plan_is_pure_in_seed(self, seed, payload):
        a = default_chaos_plan(seed, payload=payload)
        b = default_chaos_plan(seed, payload=payload)
        assert a.describe() == b.describe()
        assert [s.describe() for s in a] == [s.describe() for s in b]

    @FEW
    @given(seed=seeds)
    def test_rng_stream_is_bitwise_reproducible(self, seed):
        spec = FaultSpec("corrupt", "axpy", 17, payload="nan")
        plan = FaultPlan((spec,), seed=seed)
        draws = lambda: plan.rng_for(spec).integers(0, 1 << 62, size=128)
        assert np.array_equal(draws(), draws())

    def test_distinct_seeds_move_injection_sites(self):
        sites = {
            tuple((s.kind, s.pattern, s.launch_index) for s in default_chaos_plan(seed))
            for seed in range(16)
        }
        # Not every pair differs, but the family must not collapse.
        assert len(sites) >= 8


class TestRunDeterminism:
    @FEW
    @given(seed=seeds, solver=solvers)
    def test_same_plan_seed_backend_is_bitwise_identical(self, seed, solver):
        first = run_chaos(solver, seed=seed)
        second = run_chaos(solver, seed=seed)
        assert first.trace() == second.trace()
        assert np.array_equal(first.x, second.x)
        assert first.residual == second.residual  # exact, not approx

    @FEW
    @given(seed=seeds, solver=solvers)
    def test_serial_and_threads_agree(self, seed, solver):
        serial = run_chaos(solver, seed=seed, backend="serial")
        threads = run_chaos(solver, seed=seed, backend="threads", jobs=4)
        assert serial.trace() == threads.trace()
        assert np.array_equal(serial.x, threads.x)

    def test_threads_twice_is_bitwise_identical(self):
        a = run_chaos("cg", seed=7, backend="threads", jobs=4)
        b = run_chaos("cg", seed=7, backend="threads", jobs=4)
        assert a.trace() == b.trace()
        assert np.array_equal(a.x, b.x)

    def test_different_seeds_hit_different_sites(self):
        def injection_sites(seed):
            report = run_chaos("cg", seed=seed)
            return tuple(
                (e.kind, e.task_name, e.spec.launch_index) for e in report.events
            )

        sites = {injection_sites(seed) for seed in range(8)}
        assert len(sites) >= 4
