"""Chaos under replay: faults fired into replayed iteration windows.

A compiled plan is attached to a faulted runtime and driven by
:func:`solve_resilient`.  The contract under test:

* before the fault bites, iterations genuinely replay (the session's
  counters prove the fast path engaged);
* the injected fault is still detected — replay skips dependence
  analysis, not execution, so monitors and crash handling see the same
  state they would on a fresh launch;
* rollback kills the session permanently (``abort_iteration`` → the
  conservative trace-invalidation semantics) and the remainder of the
  solve runs fresh;
* the recovered trajectory still lands on the fault-free bits.
"""

import numpy as np
import pytest

from repro.api import make_planner
from repro.core.planner import SOL
from repro.core.solvers import SOLVER_REGISTRY, solve_resilient
from repro.faults import FaultPlan
from repro.problems import tridiagonal_toeplitz
from repro.replay import compile_solver_program
from repro.runtime import Runtime

SIZE = 30


def make(runtime, solver="cg", seed=0):
    A = tridiagonal_toeplitz(SIZE)
    b = np.random.default_rng(seed).random(SIZE)
    planner = make_planner(A, b, n_pieces=3, runtime=runtime)
    return SOLVER_REGISTRY[solver](planner)


@pytest.fixture(scope="module")
def compiled():
    return compile_solver_program(lambda rt: make(rt))


@pytest.fixture(scope="module")
def fault_free_bits():
    rt = Runtime(backend="serial")
    ksm = make(rt)
    ksm.solve(tolerance=1e-8, max_iterations=200)
    rt.sync()
    return np.array(ksm.planner.get_array(SOL), copy=True)


class TestFaultFreeResilientReplay:
    def test_resilient_loop_replays_and_matches_plain_solve(
        self, compiled, fault_free_bits
    ):
        rt = Runtime(backend="serial", plan=compiled)
        ksm = make(rt)
        result = solve_resilient(ksm, tolerance=1e-8, max_iterations=200)
        rt.sync()
        session = rt.replay_session
        assert result.converged and result.recoveries == []
        assert not session.dead
        assert session.windows_replayed >= 1
        assert session.fallbacks == 0
        assert np.array_equal(ksm.planner.get_array(SOL), fault_free_bits)


class TestFaultsUnderReplay:
    def test_corruption_mid_replay_detected_and_recovered(
        self, compiled, fault_free_bits
    ):
        faults = FaultPlan.parse("corrupt:axpy:14:nan", seed=2)
        rt = Runtime(backend="serial", faults=faults, plan=compiled)
        ksm = make(rt)
        result = solve_resilient(ksm, tolerance=1e-8, max_iterations=200)
        rt.sync()
        session = rt.replay_session
        # The fast path was genuinely engaged before the fault...
        assert session.windows_replayed >= 1
        # ...the corruption was still caught and rolled back...
        assert result.converged
        assert result.n_rollbacks >= 1
        assert any("nan-guard" in r.reason for r in result.recoveries)
        assert rt.fault_log.n_injected == 1
        assert rt.fault_log.n_unrecovered == 0
        # ...the rollback killed the session for good (trace
        # invalidation: post-restore state was rebuilt outside replay)...
        assert session.dead
        # ...and recovery still lands on the fault-free bits.
        assert np.array_equal(ksm.planner.get_array(SOL), fault_free_bits)

    def test_crash_mid_replay_recovers_via_rollback(
        self, compiled, fault_free_bits
    ):
        faults = FaultPlan.parse("crash:dot_partial:12", retry_crashes=False)
        rt = Runtime(backend="serial", faults=faults, plan=compiled)
        ksm = make(rt)
        result = solve_resilient(ksm, tolerance=1e-8, max_iterations=200)
        rt.sync()
        session = rt.replay_session
        assert result.converged
        assert any(r.reason == "crash" for r in result.recoveries)
        assert rt.fault_log.n_unrecovered == 0
        assert session.windows_replayed >= 1
        assert session.dead
        assert np.array_equal(ksm.planner.get_array(SOL), fault_free_bits)

    def test_dead_session_never_resurrects_after_recovery(self, compiled):
        faults = FaultPlan.parse("corrupt:axpy:14:nan", seed=2)
        rt = Runtime(backend="serial", faults=faults, plan=compiled)
        ksm = make(rt)
        solve_resilient(ksm, tolerance=1e-8, max_iterations=200)
        session = rt.replay_session
        replayed_before = session.tasks_replayed
        # Further iterations on the same runtime must stay fresh-launch.
        rt.begin_iteration(("post", 0))
        ksm.step()
        rt.end_iteration(("post", 0))
        rt.sync()
        assert session.dead
        assert session.tasks_replayed == replayed_before
