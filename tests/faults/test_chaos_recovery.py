"""Chaos regression matrix: every solver survives the default chaos
plan (crash + stall + corruption mid-solve) on every storage format and
both executing backends, and the recovered solution matches the
fault-free one within tolerance.

An unrecoverable configuration (corruption with the monitors disabled)
must be *reported* as such, never silently "converge" to a wrong
answer.
"""

import numpy as np
import pytest

from repro.core.solvers import SOLVER_REGISTRY
from repro.faults.chaos import (
    RESIDUAL_MATCH_TOL,
    chaos_program_names,
    run_chaos,
    run_chaos_matrix,
)
from repro.sparse.plugin import matrix_format_names

SOLVERS = sorted(SOLVER_REGISTRY)
# Every bitwise-enrolled registered format except ell (structurally a
# duplicate of sell_c_sigma's padded-grid dispatch under chaos, and the
# matrix is wall-clock-bounded); plugins auto-enroll via the registry.
FORMATS = [f for f in matrix_format_names() if f != "ell"]
BACKENDS = ["serial", "threads"]


class TestDefaultPlanRecovery:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("solver", SOLVERS)
    def test_recovers_and_matches_fault_free(self, solver, fmt, backend):
        report = run_chaos(solver, seed=1, fmt=fmt, backend=backend)
        assert report.ok, report.summary()
        assert report.n_injected >= 1
        assert report.n_detected == report.n_injected
        assert report.n_unrecovered == 0
        assert report.converged
        # "Matches fault-free within tolerance": bitwise replay gives an
        # exactly-zero difference for most runs; absorbed corruption is
        # accepted only when the true residual itself meets tolerance.
        assert (
            report.residual_diff <= RESIDUAL_MATCH_TOL
            or report.residual <= 100.0 * report.tolerance
        )

    @pytest.mark.parametrize("seed", [2, 5])
    def test_other_seeds_recover_too(self, seed):
        report = run_chaos("cg", seed=seed)
        assert report.ok, report.summary()

    def test_fig8_program_uses_laplacian(self):
        report = run_chaos("fig8-cg", seed=1)
        assert report.ok, report.summary()
        assert report.fmt == "scipy-csr"
        assert report.program == "fig8-cg"

    def test_program_names_cover_registry(self):
        names = chaos_program_names()
        for solver in SOLVERS:
            assert solver in names
            assert f"fig8-{solver}" in names

    def test_unknown_program_rejected(self):
        with pytest.raises(KeyError, match="unknown program"):
            run_chaos("not-a-solver", seed=1)

    def test_unknown_format_rejected(self):
        with pytest.raises(KeyError, match="unknown format"):
            run_chaos("cg", seed=1, fmt="toeplitz-magic")


class TestUnrecoverableReportedHonestly:
    def test_corruption_with_monitors_disabled_is_flagged(self):
        # pcg + seed 4 + bitflip needs the escalation machinery; with
        # monitors off nothing detects the flip and the run must be
        # reported as failed, not as a (wrong) success.
        from repro.faults import default_chaos_plan

        report = run_chaos(
            "pcg",
            seed=4,
            plan=default_chaos_plan(4, payload="bitflip"),
            monitors=False,
        )
        assert not report.ok
        assert report.n_unrecovered >= 1 or not report.converged
        text = report.summary()
        assert "unrecovered" in text

    def test_nan_corruption_with_monitors_disabled_is_flagged(self):
        report = run_chaos("cg", seed=1, monitors=False)
        assert not report.ok
        # Either the recurrence went non-finite (solve reports failure)
        # or the fault stayed open; both are honest outcomes.
        assert report.n_unrecovered >= 1 or not report.converged
        assert not np.isfinite(report.residual) or report.residual > report.tolerance

    def test_setup_fault_is_reported_not_hidden(self):
        # A no-retry crash on the solver constructor's very first copy:
        # nothing exists to roll back to, and the report must say so.
        from repro.faults import FaultPlan

        plan = FaultPlan.parse("crash:copy:0", retry_crashes=False)
        report = run_chaos("cg", seed=1, plan=plan)
        assert not report.ok
        assert report.setup_fault is not None
        assert not report.converged
        assert "setup" in report.summary() or "fault" in report.summary()


class TestMatrixSweep:
    def test_run_chaos_matrix_shape_and_ok(self):
        reports = run_chaos_matrix(
            programs=["cg", "bicgstab"], seeds=[1, 3], backends=["serial"]
        )
        assert len(reports) == 4
        for report in reports:
            assert report.ok, report.summary()
        seen = {(r.program, r.seed, r.backend) for r in reports}
        assert ("cg", 1, "serial") in seen and ("bicgstab", 3, "serial") in seen
