"""ThreadedExecutor deadlock diagnostics under fault stalls: the error
message must say whether a task is fault-stalled (delayed on purpose by
the injector, still running) or genuinely blocked."""

import threading

import numpy as np
import pytest

from repro.runtime import (
    ExecutorError,
    IndexSpace,
    Privilege,
    Runtime,
    Subset,
    TaskLauncher,
    ThreadedExecutor,
)


def make_runtime(jobs=2):
    return Runtime(backend="threads", jobs=jobs, faults=False)


def deadlock_message(rt, monitor=None):
    """Build the self-wait cycle from the executor suite and return the
    DeadlockError text it produces."""
    if monitor is not None:
        rt.executor.stall_monitor = monitor
    region = rt.create_region(IndexSpace.linear(8), {"v": np.float64})
    rt.allocate(region, "v", fill=1.0)
    cell = {}
    launched = threading.Event()

    def body_a(ctx):
        launched.wait(timeout=10)
        return cell["fb"].get()  # B depends on A: cycle

    tl_a = TaskLauncher("a", body_a)
    tl_a.add_requirement(
        region, ["v"], Subset.full(region.ispace), Privilege.READ_WRITE
    )
    rt.execute(tl_a)

    tl_b = TaskLauncher("b", lambda ctx: float(ctx[0].read().sum()))
    tl_b.add_requirement(
        region, ["v"], Subset.full(region.ispace), Privilege.READ_WRITE
    )
    cell["fb"] = rt.execute(tl_b)
    launched.set()
    with pytest.raises(ExecutorError) as excinfo:
        rt.sync()
    return str(excinfo.value)


class TestMessageContent:
    def test_plain_deadlock_has_no_stall_note(self):
        rt = make_runtime()
        try:
            message = deadlock_message(rt)
            assert "dependence cycle" in message
            assert "[fault-stalled]" not in message
            assert "fault-injection note" not in message
        finally:
            rt.executor.shutdown()

    def test_stalled_tasks_are_marked_in_the_message(self):
        rt = make_runtime()
        try:
            # Report every pending task as fault-stalled: the diagnostic
            # must mark the labels and append the explanatory note.
            message = deadlock_message(
                rt, monitor=lambda: set(rt.executor._pending)
            )
            assert "[fault-stalled]" in message
            assert "fault-injection note" in message
            assert "delayed on purpose, still running" in message
            assert "not genuinely blocked" in message
        finally:
            rt.executor.shutdown()

    def test_unrelated_stalls_do_not_mark_cycle_tasks(self):
        rt = make_runtime()
        try:
            message = deadlock_message(rt, monitor=lambda: {999_999})
            # The note names the stalled id, but no cycle task is marked.
            assert "[fault-stalled]" not in message
            assert "fault-injection note: task(s) 999999" in message
        finally:
            rt.executor.shutdown()


class TestStallPlumbing:
    def test_label_marks_only_stalled_ids(self):
        ex = ThreadedExecutor(n_workers=1)
        try:
            assert ex._task_label_locked(None) == "?"
            assert ex._task_label_locked(42) == "42"
            assert ex._task_label_locked(42, {42}) == "42 [fault-stalled]"
            assert ex._task_label_locked(42, {7}) == "42"
        finally:
            ex.shutdown()

    def test_stall_note_formats_sorted_ids(self):
        assert ThreadedExecutor._stall_note(set()) == ""
        note = ThreadedExecutor._stall_note({9, 3})
        assert "task(s) 3, 9" in note
        assert "not genuinely blocked" in note

    def test_broken_monitor_never_breaks_diagnostics(self):
        ex = ThreadedExecutor(n_workers=1)
        try:
            ex.stall_monitor = lambda: (_ for _ in ()).throw(RuntimeError("boom"))
            assert ex._stalled_ids() == set()
        finally:
            ex.shutdown()

    def test_injector_wires_monitor_to_its_stall_set(self):
        rt = Runtime(backend="threads", jobs=2, faults="stall:never:0:1")
        try:
            assert rt.executor.inner.stall_monitor == rt.executor.currently_stalled
            assert rt.executor.inner._stalled_ids() == set()
        finally:
            rt.executor.shutdown()


class TestBlockedSubgraphDump:
    def test_message_names_a_loadable_dump_file(self):
        import json
        import os
        import re

        from repro.obs import Observability

        obs = Observability(trace=False)
        rt = Runtime(backend="threads", jobs=2, faults=False, observability=obs)
        path = None
        try:
            message = deadlock_message(rt)
            match = re.search(r"blocked-subgraph trace written to (\S+)", message)
            assert match, message
            path = match.group(1)
            with open(path) as fh:
                dump = json.load(fh)
            assert dump["schema"] == "repro-deadlock/1"
            assert dump["reason"]
            assert dump["n_pending_total"] >= 1
            assert dump["blocked_subgraph"]
            node = dump["blocked_subgraph"][0]
            assert set(node) >= {
                "task_id", "name", "claimed", "ready", "waiting_on", "dependents",
            }
            names = {n["name"] for n in dump["blocked_subgraph"]}
            assert {"a", "b"} <= names
            # The probe counted the deadlock on the way out.
            counters = obs.metrics.snapshot()["counters"]
            assert counters["executor.deadlocks"] == 1.0
        finally:
            rt.executor.shutdown()
            if path is not None and os.path.exists(path):
                os.unlink(path)

    def test_dump_is_written_without_observability_too(self):
        import os
        import re

        rt = make_runtime()
        message = None
        try:
            message = deadlock_message(rt)
            assert re.search(r"blocked-subgraph trace written to \S+", message)
        finally:
            rt.executor.shutdown()
            match = message and re.search(
                r"blocked-subgraph trace written to (\S+)", message
            )
            if match and os.path.exists(match.group(1)):
                os.unlink(match.group(1))
