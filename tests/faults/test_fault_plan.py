"""FaultSpec/FaultPlan: validation, parsing, env wiring, seeded RNG."""

import numpy as np
import pytest

from repro.faults import (
    FAULT_SEED_ENV,
    FAULTS_ENV,
    FaultEvent,
    FaultLog,
    FaultPlan,
    FaultSpec,
    default_chaos_plan,
)


class TestFaultSpec:
    def test_fields_and_describe(self):
        spec = FaultSpec("corrupt", "axpy", 12, payload="bitflip")
        assert spec.kind == "corrupt"
        assert "corrupt:axpy[#12]:bitflip" == spec.describe()
        assert "stall:spmv_*[#3]:8ms" == FaultSpec(
            "stall", "spmv_*", 3, stall_ms=8.0
        ).describe()
        assert "crash:dot_partial[#7]" == FaultSpec("crash", "dot_partial", 7).describe()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("explode", "axpy", 0)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="launch_index"):
            FaultSpec("crash", "axpy", -1)

    def test_unknown_payload_rejected(self):
        with pytest.raises(ValueError, match="payload"):
            FaultSpec("corrupt", "axpy", 0, payload="zero")

    def test_nonpositive_stall_rejected(self):
        with pytest.raises(ValueError, match="stall_ms"):
            FaultSpec("stall", "axpy", 0, stall_ms=0.0)


class TestParse:
    def test_three_specs_with_extras(self):
        plan = FaultPlan.parse(
            "crash:dot_partial:12; stall:spmv_*:3:8; corrupt:axpy:20:nan", seed=5
        )
        assert len(plan) == 3
        kinds = [s.kind for s in plan]
        assert kinds == ["crash", "stall", "corrupt"]
        assert plan.specs[1].stall_ms == 8.0
        assert plan.specs[2].payload == "nan"
        assert plan.seed == 5

    def test_comma_separator_and_whitespace(self):
        plan = FaultPlan.parse(" crash:axpy:1 , corrupt:copy:2:bitflip ")
        assert len(plan) == 2
        assert plan.specs[1].payload == "bitflip"

    def test_retry_flag_carried(self):
        assert FaultPlan.parse("crash:axpy:0").retry_crashes
        assert not FaultPlan.parse("crash:axpy:0", retry_crashes=False).retry_crashes

    @pytest.mark.parametrize(
        "text,match",
        [
            ("crash:axpy", "malformed"),
            ("crash:axpy:one", "not an integer"),
            ("crash::3", "empty task pattern"),
            ("stall:axpy:3:soon", "not a number"),
            (";;", "no specs"),
            ("corrupt:axpy:3:zeros", "payload"),
        ],
    )
    def test_malformed_rejected(self, text, match):
        with pytest.raises(ValueError, match=match):
            FaultPlan.parse(text)

    def test_describe_mentions_policy_and_specs(self):
        plan = FaultPlan.parse("crash:axpy:4", seed=9, retry_crashes=False)
        text = plan.describe()
        assert "seed=9" in text and "rollback" in text and "crash:axpy[#4]" in text


class TestFromEnv:
    def test_unset_is_none(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({FAULTS_ENV: "   "}) is None

    def test_set_with_seed(self):
        env = {FAULTS_ENV: "crash:dot_partial:6", FAULT_SEED_ENV: "11"}
        plan = FaultPlan.from_env(env)
        assert plan is not None
        assert plan.seed == 11
        assert plan.specs[0].pattern == "dot_partial"

    def test_bad_seed_falls_back_to_zero(self):
        env = {FAULTS_ENV: "crash:axpy:0", FAULT_SEED_ENV: "eleven"}
        assert FaultPlan.from_env(env).seed == 0

    def test_reads_process_environ(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "stall:spmv_*:2:4")
        monkeypatch.setenv(FAULT_SEED_ENV, "3")
        plan = FaultPlan.from_env()
        assert plan.seed == 3 and plan.specs[0].kind == "stall"


class TestSeededRng:
    def test_same_spec_same_seed_bitwise_identical(self):
        plan = FaultPlan.parse("corrupt:axpy:20:nan", seed=7)
        a = plan.rng_for(plan.specs[0]).integers(0, 1 << 30, size=64)
        b = plan.rng_for(plan.specs[0]).integers(0, 1 << 30, size=64)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        spec = FaultSpec("corrupt", "axpy", 20)
        a = FaultPlan((spec,), seed=1).rng_for(spec).integers(0, 1 << 30, size=32)
        b = FaultPlan((spec,), seed=2).rng_for(spec).integers(0, 1 << 30, size=32)
        assert not np.array_equal(a, b)

    def test_with_seed_returns_new_plan(self):
        plan = FaultPlan.parse("crash:axpy:0", seed=1)
        assert plan.with_seed(9).seed == 9
        assert plan.seed == 1  # frozen original untouched


class TestDefaultChaosPlan:
    def test_one_of_each_kind(self):
        plan = default_chaos_plan(1)
        assert sorted(s.kind for s in plan) == ["corrupt", "crash", "stall"]
        assert plan.retry_crashes

    def test_deterministic_per_seed(self):
        assert default_chaos_plan(5).describe() == default_chaos_plan(5).describe()

    def test_different_seeds_pick_different_sites(self):
        sites = {
            tuple((s.kind, s.launch_index) for s in default_chaos_plan(seed))
            for seed in range(12)
        }
        assert len(sites) > 1

    def test_windows_stay_clear_of_setup(self):
        # Indices start past what any solver constructor launches.
        for seed in range(20):
            plan = default_chaos_plan(seed)
            for spec in plan:
                if spec.kind in ("crash", "corrupt"):
                    assert spec.launch_index >= 10

    def test_payload_and_policy_forwarded(self):
        plan = default_chaos_plan(2, payload="bitflip", retry_crashes=False)
        [corrupt] = [s for s in plan if s.kind == "corrupt"]
        assert corrupt.payload == "bitflip"
        assert not plan.retry_crashes

    def test_kind_subset(self):
        plan = default_chaos_plan(1, kinds=("crash",))
        assert [s.kind for s in plan] == ["crash"]
        with pytest.raises(ValueError, match="no known fault kinds"):
            default_chaos_plan(1, kinds=("meteor",))


class TestFaultLog:
    def _event(self, kind="corrupt", applied=True):
        return FaultEvent(
            spec=FaultSpec(kind, "axpy", 3),
            task_name="axpy",
            task_id=101,
            point=0,
            applied=applied,
        )

    def test_counters(self):
        log = FaultLog()
        done = self._event()
        done.detected = done.recovered = True
        log.add(done)
        log.add(self._event())  # applied, open
        log.add(self._event(applied=False))  # scheduled only
        assert len(log) == 3
        assert log.n_injected == 2
        assert log.n_detected == 1
        assert log.n_recovered == 1
        assert log.n_unrecovered == 1

    def test_mark_open_recovered(self):
        log = FaultLog()
        open_event = self._event()
        log.add(open_event)
        log.add(self._event(applied=False))
        n = log.mark_open_recovered(detected_by="monitor:nan-guard")
        assert n == 1
        assert open_event.recovered and open_event.detected
        assert open_event.detected_by == "monitor:nan-guard"
        assert open_event.recovery == "rollback"
        assert log.n_unrecovered == 0
        assert log.mark_open_recovered(detected_by="again") == 0

    def test_trace_excludes_process_counters(self):
        a, b = self._event(), self._event()
        b.task_id = a.task_id + 555  # different process-global id
        b.detail = "vec99.v[3] <- nan"  # different auto-generated name
        assert a.trace_tuple() == b.trace_tuple()

    def test_describe_status_progression(self):
        e = self._event(applied=False)
        assert "scheduled" in e.describe()
        e.applied = True
        assert "injected" in e.describe()
        e.detected = True
        e.detected_by = "monitor:nan-guard"
        assert "detected by monitor:nan-guard" in e.describe()
        e.recovered = True
        e.recovery = "rollback"
        assert "recovered" in e.describe() and "via rollback" in e.describe()
