"""`repro chaos` CLI: exit codes, summary output, JSON export."""

import json

import pytest

from repro.cli import main


class TestExitCodes:
    def test_recovered_run_exits_zero(self, capsys):
        code = main(["chaos", "fig8-cg", "--seed", "1", "--backend", "threads"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "injected" in out and "recovered" in out
        assert "unrecovered=0" in out

    def test_unrecovered_run_exits_one(self, capsys):
        code = main(["chaos", "cg", "--seed", "1", "--no-monitors"])
        out = capsys.readouterr().out
        assert code == 1, out

    def test_unknown_program_exits_two(self, capsys):
        code = main(["chaos", "frobnicate", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 2
        assert "chaos:" in out and "unknown program" in out

    def test_malformed_plan_exits_two(self, capsys):
        code = main(["chaos", "cg", "--plan", "crash:axpy"])
        out = capsys.readouterr().out
        assert code == 2
        assert "malformed" in out


class TestOptions:
    def test_explicit_plan_and_rollback_policy(self, capsys):
        code = main(
            [
                "chaos",
                "cg",
                "--seed",
                "3",
                "--plan",
                "crash:dot_partial:12",
                "--crash-policy",
                "rollback",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0, out
        assert "rollback" in out

    def test_json_export(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        code = main(
            ["chaos", "cg", "--seed", "2", "--json", str(target)]
        )
        assert code == 0, capsys.readouterr().out
        payload = json.loads(target.read_text())
        assert payload["program"] == "cg"
        assert payload["seed"] == 2
        assert payload["n_injected"] >= 1
        assert payload["n_unrecovered"] == 0

    def test_seed_changes_the_printed_plan(self, capsys):
        main(["chaos", "cg", "--seed", "1"])
        first = capsys.readouterr().out
        main(["chaos", "cg", "--seed", "2"])
        second = capsys.readouterr().out
        assert first != second

    def test_bitflip_payload_accepted(self, capsys):
        code = main(["chaos", "cg", "--seed", "1", "--payload", "bitflip"])
        out = capsys.readouterr().out
        assert code == 0, out
