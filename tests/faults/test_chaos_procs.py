"""Chaos under the process-pool backend.

The default chaos plan (crash + stall + corruption) must behave under
``backend="procs"`` exactly as under serial: every fault detected, the
solve recovered to the fault-free bits, and the recovery *trace* —
which fault fired where and how it was handled — identical, for both
crash policies (transparent retry and checkpoint rollback).
"""

import numpy as np
import pytest

from repro.faults.chaos import RESIDUAL_MATCH_TOL, run_chaos


@pytest.mark.parametrize("policy", ["retry", "rollback"])
class TestChaosUnderProcs:
    def test_recovers_to_fault_free_bits(self, policy):
        report = run_chaos("fig8-cg", seed=3, backend="procs", crash_policy=policy)
        assert report.ok, report.summary()
        assert report.n_injected >= 1
        assert report.n_detected == report.n_injected
        assert report.n_unrecovered == 0
        assert report.converged
        assert (
            report.residual_diff <= RESIDUAL_MATCH_TOL
            or report.residual <= 100.0 * report.tolerance
        )

    def test_trace_and_bits_match_serial_chaos(self, policy):
        ref = run_chaos("fig8-cg", seed=3, backend="serial", crash_policy=policy)
        rep = run_chaos("fig8-cg", seed=3, backend="procs", crash_policy=policy)
        assert rep.trace() == ref.trace()
        assert np.array_equal(rep.x, ref.x)
