"""Checkpoint/restore protocol and the resilient drive loop."""

import numpy as np
import pytest

from repro.api import make_planner
from repro.core.planner import SOL
from repro.core.solvers import (
    SOLVER_REGISTRY,
    UnrecoverableFaultError,
    is_recoverable_fault,
    solve_resilient,
)
from repro.faults import (
    FaultEvent,
    FaultPlan,
    FaultSpec,
    InjectedTaskFault,
    default_chaos_plan,
)
from repro.faults.chaos import run_chaos
from repro.faults.monitors import NaNGuard, ResidualDriftMonitor, default_monitors
from repro.problems import tridiagonal_toeplitz
from repro.runtime import Runtime

SIZE = 30


def build(solver="cg", plan=False, backend="serial", seed=0, **runtime_kwargs):
    rt = Runtime(backend=backend, faults=plan, **runtime_kwargs)
    A = tridiagonal_toeplitz(SIZE)
    b = np.random.default_rng(seed).random(SIZE)
    extra = {"preconditioner": "jacobi"} if solver == "pcg" else {}
    planner = make_planner(A, b, n_pieces=3, runtime=rt, **extra)
    return rt, SOLVER_REGISTRY[solver](planner)


class TestCheckpointRestore:
    @pytest.mark.parametrize("solver", sorted(SOLVER_REGISTRY))
    def test_checkpoint_ids_cover_sol(self, solver):
        rt, ksm = build(solver)
        ids = ksm.checkpoint_vector_ids()
        assert ids[0] == SOL
        assert len(ids) == len(set(ids))

    def test_snapshot_is_bitwise_and_isolated(self):
        rt, ksm = build("cg")
        for _ in range(3):
            ksm.step()
        ksm.iterations_done = 3
        ckpt = ksm.checkpoint()
        assert ckpt.iteration == 3
        before = {vid: ksm.planner.get_array(vid).copy() for vid in ckpt.vectors}
        for vid, snap in ckpt.vectors.items():
            assert np.array_equal(snap, before[vid])
        # Stepping further must not mutate the snapshot (it is a copy).
        for _ in range(2):
            ksm.step()
        for vid, snap in ckpt.vectors.items():
            assert np.array_equal(snap, before[vid])

    def test_restore_rewinds_bitwise_and_replays_identically(self):
        rt, ksm = build("cg")
        for i in range(3):
            ksm.step()
            ksm.iterations_done = i + 1
        ckpt = ksm.checkpoint()
        trajectory = []
        for _ in range(2):
            ksm.step()
            trajectory.append(ksm.planner.get_array(SOL).copy())
        ksm.restore(ckpt)
        assert ksm.iterations_done == 3
        for vid, snap in ckpt.vectors.items():
            assert np.array_equal(ksm.planner.get_array(vid), snap)
        # Deterministic replay: the same two steps land on the same bits.
        for k in range(2):
            ksm.step()
            assert np.array_equal(ksm.planner.get_array(SOL), trajectory[k])

    @pytest.mark.parametrize("solver", sorted(SOLVER_REGISTRY))
    def test_scalar_state_round_trips(self, solver):
        rt, ksm = build(solver)
        for _ in range(2):
            ksm.step()
        ckpt = ksm.checkpoint()
        measure_at_ckpt = float(ksm.get_convergence_measure())
        for _ in range(2):
            ksm.step()
        ksm.restore(ckpt)
        assert float(ksm.get_convergence_measure()) == measure_at_ckpt


class TestResilientLoopFaultFree:
    @pytest.mark.parametrize("solver", ["cg", "bicgstab", "gmres", "tfqmr"])
    def test_matches_plain_solve_bitwise(self, solver):
        rt1, plain = build(solver)
        result_plain = plain.solve(tolerance=1e-8, max_iterations=200)
        x_plain = plain.planner.get_array(SOL)

        rt2, resilient = build(solver)
        result = solve_resilient(resilient, tolerance=1e-8, max_iterations=200)
        assert result.converged == result_plain.converged
        assert result.iterations == result_plain.iterations
        assert result.recoveries == []
        assert not result.gave_up
        assert np.array_equal(resilient.planner.get_array(SOL), x_plain)

    def test_solve_resilient_method_delegates(self):
        rt, ksm = build("cg")
        result = ksm.solve_resilient(tolerance=1e-8, max_iterations=200)
        assert result.converged and result.n_rollbacks == 0

    def test_rejects_symbolic_backend(self):
        rt_capture = Runtime(backend="capture", faults=False)
        planner = make_planner(
            tridiagonal_toeplitz(SIZE),
            np.ones(SIZE),
            n_pieces=3,
            runtime=rt_capture,
        )
        solver = SOLVER_REGISTRY["cg"](planner)
        with pytest.raises(RuntimeError, match="symbolic"):
            solve_resilient(solver)

    def test_checkpoint_every_validated(self):
        rt, ksm = build("cg")
        with pytest.raises(ValueError, match="checkpoint_every"):
            solve_resilient(ksm, checkpoint_every=0)


class TestRollbackRecovery:
    def test_corruption_detected_and_rolled_back(self):
        plan = FaultPlan.parse("corrupt:axpy:14:nan", seed=2)
        rt, ksm = build("cg", plan=plan)
        result = solve_resilient(ksm, tolerance=1e-8, max_iterations=200)
        assert result.converged
        assert result.n_rollbacks >= 1
        assert any("nan-guard" in r.reason for r in result.recoveries)
        log = rt.fault_log
        assert log.n_injected == 1 and log.n_unrecovered == 0
        # Bitwise identical to the fault-free run.
        rt_ref, ref = build("cg")
        ref.solve(tolerance=1e-8, max_iterations=200)
        assert np.array_equal(
            ksm.planner.get_array(SOL), ref.planner.get_array(SOL)
        )

    def test_crash_without_retry_recovers_via_rollback(self):
        plan = FaultPlan.parse("crash:dot_partial:12", retry_crashes=False)
        rt, ksm = build("cg", plan=plan)
        result = solve_resilient(ksm, tolerance=1e-8, max_iterations=200)
        assert result.converged
        assert any(r.reason == "crash" for r in result.recoveries)
        assert rt.fault_log.n_unrecovered == 0

    def test_crash_without_retry_on_threads(self):
        plan = FaultPlan.parse("crash:dot_partial:12", retry_crashes=False)
        rt, ksm = build("cg", plan=plan, backend="threads", jobs=2)
        try:
            result = solve_resilient(ksm, tolerance=1e-8, max_iterations=200)
            assert result.converged
            assert rt.fault_log.n_unrecovered == 0
        finally:
            rt.executor.shutdown()

    def test_recovery_budget_exhaustion_reported(self):
        # Every dot crashes forever: no budget survives that.
        plan = FaultPlan.parse(
            ";".join(f"crash:dot_partial:{i}" for i in range(9, 200, 3)),
            retry_crashes=False,
        )
        rt, ksm = build("cg", plan=plan)
        result = solve_resilient(ksm, tolerance=1e-8, max_iterations=50,
                                 max_recoveries=3)
        assert result.gave_up
        assert not result.converged
        assert result.n_rollbacks == 3

    def test_setup_crash_surfaces_during_construction(self):
        # On the serial backend the injected crash fires inline, so the
        # solver constructor itself raises a recoverable fault — the path
        # ``repro chaos`` reports as a setup fault.
        plan = FaultPlan.parse("crash:copy:0", retry_crashes=False)
        rt = Runtime(faults=plan)
        A = tridiagonal_toeplitz(SIZE)
        planner = make_planner(A, np.ones(SIZE), n_pieces=3, runtime=rt)
        with pytest.raises(InjectedTaskFault) as excinfo:
            SOLVER_REGISTRY["cg"](planner)
        assert is_recoverable_fault(excinfo.value)

    def test_fault_during_initial_checkpoint_is_unrecoverable(self):
        rt, ksm = build("cg")
        event = FaultEvent(
            spec=FaultSpec("crash", "copy", 0),
            task_name="copy",
            task_id=1,
            point=0,
            applied=True,
        )
        ksm.checkpoint = lambda: (_ for _ in ()).throw(InjectedTaskFault(event))
        with pytest.raises(UnrecoverableFaultError, match="solver setup"):
            solve_resilient(ksm, tolerance=1e-8)

    def test_genuine_checkpoint_failure_not_wrapped(self):
        rt, ksm = build("cg")
        ksm.checkpoint = lambda: (_ for _ in ()).throw(OSError("disk full"))
        with pytest.raises(OSError, match="disk full"):
            solve_resilient(ksm, tolerance=1e-8)

    def test_genuine_failures_propagate(self):
        rt, ksm = build("cg")

        class Boom(ResidualDriftMonitor):
            def check(self, solver):
                raise OSError("disk on fire")

        with pytest.raises(OSError, match="disk on fire"):
            solve_resilient(ksm, monitors=[Boom()], checkpoint_every=1)

    def test_recovery_events_visible_in_timeline(self):
        plan = FaultPlan.parse("corrupt:axpy:14:nan", seed=2)
        rt, ksm = build("cg", plan=plan, keep_timeline=True)
        result = solve_resilient(ksm, tolerance=1e-8, max_iterations=200)
        assert result.n_rollbacks >= 1
        names = [entry.name for entry in rt.engine.timeline]
        assert any(n.startswith("fault:corrupt:") for n in names)
        assert any(n.startswith("recovery:rollback:monitor:nan-guard") for n in names)
        # The injection precedes its recovery in the timeline.
        first_fault = next(i for i, n in enumerate(names) if n.startswith("fault:"))
        first_recovery = next(
            i for i, n in enumerate(names) if n.startswith("recovery:")
        )
        assert first_fault < first_recovery


class TestMonitors:
    def test_disabled_monitors_fail_honestly(self):
        plan = FaultPlan.parse("corrupt:axpy:14:nan", seed=2)
        rt, ksm = build("cg", plan=plan)
        result = solve_resilient(
            ksm, tolerance=1e-8, max_iterations=200, monitors=()
        )
        # The recurrence never sees the poisoned solution piece, so the
        # loop "converges" — but the fault log and the true residual make
        # the corruption visible to any honest caller.
        assert result.n_rollbacks == 0
        assert rt.fault_log.n_unrecovered == 1
        true_residual = float(ksm.planner.residual_norm())
        assert not true_residual <= 1e-6  # NaN or large

    def test_nan_guard_names_the_vector(self):
        rt, ksm = build("cg")
        ksm.step()
        guard = NaNGuard()
        assert guard.check(ksm) is None
        arr = ksm.planner.get_array(ksm.R)
        arr[3] = np.nan
        ksm.planner.set_array(ksm.R, arr)
        violation = guard.check(ksm)
        assert violation is not None and "non-finite" in violation

    def test_drift_monitor_quiet_on_healthy_run(self):
        rt, ksm = build("cg")
        drift = ResidualDriftMonitor(atol=1e-7)
        for _ in range(6):
            ksm.step()
            assert drift.check(ksm) is None

    def test_drift_monitor_flags_divorced_solution(self):
        rt, ksm = build("cg")
        for _ in range(3):
            ksm.step()
        x = ksm.planner.get_array(SOL)
        ksm.planner.set_array(SOL, x + 100.0)  # true residual jumps; res doesn't
        violation = ResidualDriftMonitor(atol=1e-7).check(ksm)
        assert violation is not None and "drifted" in violation

    def test_bound_measure_uses_one_sided_check(self):
        rt, ksm = build("tfqmr")
        drift = ResidualDriftMonitor(atol=1e-7)
        for _ in range(8):
            ksm.step()
            # τ under-reports ‖r‖ by up to √(it+1): never a violation.
            assert drift.check(ksm) is None

    def test_default_monitors_composition(self):
        monitors = default_monitors(1e-8)
        kinds = [type(m) for m in monitors]
        assert NaNGuard in kinds and ResidualDriftMonitor in kinds


class TestEscalation:
    def test_contaminated_checkpoint_escalates_to_initial(self):
        # A bit flip that stays under the drift threshold for a few
        # boundaries contaminates later checkpoints; recovery must fall
        # back to the pristine initial state instead of livelocking.
        report = run_chaos(
            "pcg", seed=4, plan=default_chaos_plan(4, payload="bitflip")
        )
        assert report.ok, report.summary()
        assert not report.gave_up
        assert any(r.restored_iteration == 0 for r in report.recoveries)

    def test_undetectable_corruption_recovers_via_stagnation_restart(self):
        # Seed 9's bit flip lands where the invariants cannot see it:
        # convergence stalls, and the last-resort stagnation restart
        # replays the clean trajectory from the initial checkpoint.
        report = run_chaos(
            "bicg", seed=9, plan=default_chaos_plan(9, payload="bitflip")
        )
        assert report.ok, report.summary()
        assert report.n_unrecovered == 0
