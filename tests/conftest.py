"""Shared fixtures for the test suite."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.runtime import Machine, Runtime, ShardedMapper, lassen


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_machine():
    """Two nodes, four GPUs each — enough to exercise NVLink and NIC paths."""
    return lassen(2)


@pytest.fixture
def cpu_machine():
    """Four CPU-only nodes (the §6.3 configuration, scaled down)."""
    return Machine(n_nodes=4, gpus_per_node=0)


@pytest.fixture
def runtime(small_machine):
    return Runtime(machine=small_machine, mapper=ShardedMapper(small_machine))


@pytest.fixture
def random_sparse(rng):
    """A reproducible 20×24 random sparse matrix with ~30% density."""
    A = sp.random(20, 24, density=0.3, random_state=np.random.default_rng(7), format="csr")
    A.data[:] = rng.normal(size=A.nnz)
    return A


@pytest.fixture
def spd_system(rng):
    """A small SPD system (1-D Laplacian) with a manufactured solution."""
    n = 64
    A = sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n), format="csr")
    x_star = rng.normal(size=n)
    return A, A @ x_star, x_star
