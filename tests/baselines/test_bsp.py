"""BSP substrate: decompositions, halo analysis, clock semantics."""

import numpy as np
import pytest

from repro.baselines.bsp import BSPMachine, RankDecomposition
from repro.problems import laplacian_scipy
from repro.runtime import lassen


class TestRankDecomposition:
    def test_bounds_cover_exactly(self):
        d = RankDecomposition(100, 8)
        assert d.bounds[0] == 0 and d.bounds[-1] == 100
        sizes = np.diff(d.bounds)
        assert sizes.sum() == 100 and sizes.min() >= 12

    def test_more_ranks_than_rows_clamped(self):
        d = RankDecomposition(3, 8)
        assert d.n_ranks == 3

    def test_owner_of(self):
        d = RankDecomposition(100, 4)
        np.testing.assert_array_equal(d.owner_of(np.array([0, 25, 50, 99])), [0, 1, 2, 3])

    def test_invalid_rank_count(self):
        with pytest.raises(ValueError):
            RankDecomposition(10, 0)

    def test_stencil_halo_analysis(self):
        """For a 2-D 5-pt stencil row-banded over 4 ranks, each interior
        rank exchanges exactly one grid row with each neighbour."""
        ny = 16
        A = laplacian_scipy("2d5", (16, ny))
        d = RankDecomposition(A.shape[0], 4)
        plans = d.plan_spmv(A)
        # Interior rank 1: receives ny ghost columns from each neighbour.
        recv = dict(plans[1].halo_recv)
        assert recv == {0: ny, 2: ny}
        send = dict(plans[1].halo_send)
        assert send == {0: ny, 2: ny}
        # Edge rank 0: one neighbour only.
        assert dict(plans[0].halo_recv) == {1: ny}
        # Local + ghost nnz accounts for everything.
        total = sum(p.nnz_local + p.nnz_ghost for p in plans)
        assert total == A.nnz

    def test_plan_conservation_of_messages(self):
        A = laplacian_scipy("2d5", (8, 8))
        d = RankDecomposition(64, 4)
        plans = d.plan_spmv(A)
        sent = sum(c for p in plans for _, c in p.halo_send)
        received = sum(c for p in plans for _, c in p.halo_recv)
        assert sent == received


class TestBSPMachine:
    def test_clock_starts_at_zero_and_resets(self):
        bsp = BSPMachine(lassen(2))
        assert bsp.time == 0.0
        bsp.uniform_kernel(1e9, 1e9)
        assert bsp.time > 0.0
        bsp.reset()
        assert bsp.time == 0.0

    def test_local_kernels_do_not_synchronize(self):
        bsp = BSPMachine(lassen(2))
        flops = np.zeros(bsp.n_ranks)
        flops[0] = 1e12  # only rank 0 is slow
        bsp.local_kernel(flops, np.zeros(bsp.n_ranks))
        assert bsp.clocks[0] > bsp.clocks[1]

    def test_allreduce_synchronizes_to_slowest(self):
        bsp = BSPMachine(lassen(2))
        flops = np.zeros(bsp.n_ranks)
        flops[0] = 1e12
        bsp.local_kernel(flops, np.zeros(bsp.n_ranks))
        bsp.allreduce()
        assert np.allclose(bsp.clocks, bsp.clocks[0])
        assert bsp.total_allreduces == 1

    def test_bandwidth_efficiency_slows_kernels(self):
        fast = BSPMachine(lassen(1), bandwidth_efficiency=1.0)
        slow = BSPMachine(lassen(1), bandwidth_efficiency=0.5)
        fast.uniform_kernel(0.0, 1e10)
        slow.uniform_kernel(0.0, 1e10)
        assert slow.time > fast.time

    def test_spmv_phase_advances_all_ranks(self):
        A = laplacian_scipy("2d5", (16, 16))
        d = RankDecomposition(A.shape[0], 8)
        bsp = BSPMachine(lassen(2))
        plans = d.plan_spmv(A)
        bsp.spmv_phase(plans)
        assert (bsp.clocks > 0).all()
