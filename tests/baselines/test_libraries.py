"""Baseline libraries: numerics, timing semantics, and the P2/P3
inflexibilities the paper contrasts against."""

import numpy as np
import pytest
import scipy.sparse.linalg as spla

from repro.baselines import PETScLikeLibrary, TrilinosLikeLibrary
from repro.problems import laplacian_scipy, system_with_solution, tridiagonal_toeplitz
from repro.runtime import lassen

LIBRARIES = [PETScLikeLibrary, TrilinosLikeLibrary]
LIB_IDS = ["petsc", "trilinos"]


@pytest.fixture
def system(rng):
    A, b, x_star = system_with_solution(tridiagonal_toeplitz(80), seed=9)
    return A, b, x_star


@pytest.mark.parametrize("cls", LIBRARIES, ids=LIB_IDS)
class TestNumerics:
    def test_cg_converges_to_truth(self, cls, system):
        A, b, x_star = system
        lib = cls(A, b, lassen(2))
        result = lib.run("cg", 500, tolerance=1e-10)
        assert result.residual < 1e-10
        assert np.linalg.norm(lib.x - x_star) / np.linalg.norm(x_star) < 1e-7

    def test_bicgstab_converges(self, cls, system):
        A, b, x_star = system
        lib = cls(A, b, lassen(2))
        result = lib.run("bicgstab", 500, tolerance=1e-10)
        assert result.residual < 1e-8

    def test_gmres_converges(self, cls, system):
        A, b, x_star = system
        lib = cls(A, b, lassen(2))
        result = lib.run("gmres", 300, tolerance=1e-8)
        assert result.residual < 1e-8

    def test_matches_scipy(self, cls, system, rng):
        A, b, _ = system
        x_ref = spla.spsolve(A.tocsc(), b)
        lib = cls(A, b, lassen(2))
        lib.run("cg", 500, tolerance=1e-12)
        np.testing.assert_allclose(lib.x, x_ref, atol=1e-8)


@pytest.mark.parametrize("cls", LIBRARIES, ids=LIB_IDS)
class TestInflexibility:
    """The paper's §2.2 critique, executable."""

    def test_only_library_formats_accepted(self, cls, system):
        A, b, _ = system
        with pytest.raises(ValueError, match="storage"):
            cls(A, b, lassen(1), matrix_format="dia")

    def test_only_row_partitions_accepted(self, cls, system):
        A, b, _ = system
        with pytest.raises(ValueError, match="partition"):
            cls(A, b, lassen(1), partition="2d-tiles")

    def test_assembly_copies_user_data(self, cls, system):
        """Unlike the planner's in-place attach, the library copies."""
        A, b, _ = system
        lib = cls(A, b, lassen(1))
        lib.b[0] = 123.0
        assert b[0] != 123.0
        assert lib.ingest_time > 0.0


class TestTimingSemantics:
    def test_trilinos_slower_than_petsc_same_problem(self, rng):
        A = laplacian_scipy("2d5", (64, 64))
        b = rng.random(A.shape[0])
        tp = PETScLikeLibrary(A, b, lassen(2)).benchmark("cg", warmup=3, timed=10)
        tt = TrilinosLikeLibrary(A, b, lassen(2)).benchmark("cg", warmup=3, timed=10)
        assert tt > tp  # heavier call overhead + UVM bandwidth penalty

    def test_time_grows_with_problem_size(self, rng):
        times = []
        for side in (32, 128):
            A = laplacian_scipy("2d5", (side, side))
            b = rng.random(A.shape[0])
            times.append(PETScLikeLibrary(A, b, lassen(2)).benchmark("cg", 3, 10))
        assert times[1] > times[0]

    def test_monitoring_adds_an_allreduce(self, rng):
        """KSP-style convergence monitoring costs one extra reduction per
        iteration relative to Figure 7's CG."""
        A = tridiagonal_toeplitz(64)
        b = rng.random(64)
        lib = PETScLikeLibrary(A, b, lassen(1))
        lib.run("cg", 10)
        with_monitor = lib.bsp.total_allreduces
        lib2 = PETScLikeLibrary(A, b, lassen(1))
        lib2.monitor_norm = False
        lib2.run("cg", 10)
        assert with_monitor == lib2.bsp.total_allreduces + 10

    def test_unknown_solver_rejected(self, rng):
        A = tridiagonal_toeplitz(16)
        lib = PETScLikeLibrary(A, np.ones(16), lassen(1))
        with pytest.raises(KeyError):
            lib.run("qmr", 5)


class TestPETScGMRESDynamicRestart:
    def test_dynamic_restart_short_circuits(self, rng):
        """PETSc's GMRES may end cycles early; with an easy system the
        per-cycle work is lower than the static GMRES(10) of Trilinos —
        the reason the paper excludes PETSc from Figure 8's GMRES panel."""
        A = tridiagonal_toeplitz(64) + 10.0 * np.eye(64)
        import scipy.sparse as sp

        A = sp.csr_matrix(A)
        b = rng.random(64)
        petsc = PETScLikeLibrary(A, b, lassen(1))
        r = petsc.run("gmres", 20, tolerance=1e-10)
        assert r.residual < 1e-10
