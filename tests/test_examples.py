"""Smoke tests: every example script runs to completion.

Examples are the public face of the library; each one asserts its own
correctness claims internally, so a clean exit is a meaningful check.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "boundary_coupling.py",
    "multiple_rhs.py",
    "custom_format.py",
    "custom_format_plugin.py",
    "heat_implicit.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n--- stdout ---\n{result.stdout}\n"
        f"--- stderr ---\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


def test_load_balancing_example_importable():
    """The LB example is long-running; verify it at import/config level
    (the full run is exercised by benchmarks/test_bench_fig10.py)."""
    result = subprocess.run(
        [
            sys.executable,
            "-c",
            "import runpy, sys; sys.argv=['x']; "
            "m = runpy.run_path(r'%s', run_name='not_main'); "
            "assert 'main' in m" % (EXAMPLES / "load_balancing.py"),
        ],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
