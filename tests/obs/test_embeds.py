"""Metrics-registry snapshots embedded in chaos and bench artifacts."""

import json

from repro.bench.wallclock import WallclockCase, run_wallclock
from repro.faults.chaos import run_chaos


class TestChaosEmbed:
    def test_report_carries_metrics_snapshot(self):
        report = run_chaos("cg", seed=1, size=24, pieces=2, max_iterations=60)
        snap = report.metrics
        assert snap["counters"]["executor.tasks_executed"] > 0
        assert snap["counters"]["fault.injected"] >= 1
        assert any(name.startswith("fault:") for name in snap["counters"])
        # Residual history of the injected run, via the solver series.
        assert any(name.startswith("solver.") for name in snap["series"])
        payload = json.loads(report.to_json())
        assert payload["metrics"]["counters"] == snap["counters"]


class TestBenchEmbed:
    def test_cases_carry_metrics_snapshot(self):
        case = WallclockCase("cg-2d5-tiny", "2d5", "cg", 256, 4, 4)
        report = run_wallclock((case,), repeats=1, warmup=0)
        (entry,) = report["cases"]
        snap = entry["metrics"]
        assert snap["counters"]["executor.tasks_executed"] > 0
        json.dumps(report)  # whole report stays serializable
