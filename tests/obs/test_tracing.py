"""Tracer primitives and the Observability bundle's span/probe wiring."""

from repro.obs import NULL_OBSERVABILITY, NULL_SPAN, Observability, resolve_observability
from repro.obs.tracing import Tracer, TracingObserver
from repro.runtime.machine import ProcKind
from repro.runtime.task import TaskRecord


def make_record(task_id, name="t", point=None):
    return TaskRecord(
        task_id=task_id,
        name=name,
        requirements=[],
        proc_kind=ProcKind.GPU,
        flops=0.0,
        bytes_touched=0.0,
        owner_hint=None,
        future_dep_uids=[],
        future_uid=None,
        point=point,
    )


class TestPhases:
    def test_nesting_depth_and_reconstruction(self):
        tr = Tracer()
        tr.open_phase("solve:cg", "solve", {"tolerance": 1e-8})
        tr.open_phase("iteration", "iteration", {"index": 0})
        tr.close_phase("iteration", "iteration", {})
        tr.close_phase("solve:cg", "solve", {"flops": 10.0})
        spans = tr.phase_spans()
        assert [s.name for s in spans] == ["iteration", "solve:cg"]
        inner, outer = spans
        assert inner.depth == 1 and outer.depth == 0
        assert outer.args == {"tolerance": 1e-8, "flops": 10.0}
        assert outer.wall_end >= outer.wall_start
        assert inner.sim_duration >= 0.0

    def test_open_phase_is_omitted_from_spans(self):
        tr = Tracer()
        tr.open_phase("outer", "phase", {})
        assert tr.phase_spans() == []

    def test_sim_clock_defaults_to_zero_without_engine(self):
        tr = Tracer()
        assert tr.sim_now() == 0.0
        assert tr.engine_cost() == (0.0, 0.0)


class TestProbeStream:
    def test_wall_task_lifecycle(self):
        tr = Tracer()
        tr.task_submitted(1, "spmv", n_pending=2, n_ready=1)
        assert tr.task_started(1, worker="w0") == 1
        tr.task_finished(1)
        (span,) = tr.wall_tasks
        assert span.name == "spmv"
        assert span.worker == "w0"
        assert span.submit <= span.start <= span.finish
        assert span.queued >= 0.0
        assert span.duration >= 0.0
        assert tr.queue_samples[0][1:] == (2, 1)
        # started +1, finished -1
        assert [n for _, n in tr.occupancy_samples] == [1, 0]

    def test_finish_without_start_backfills(self):
        tr = Tracer()
        tr.task_submitted(3, "inline", 0, 1)
        tr.task_finished(3)
        (span,) = tr.wall_tasks
        assert span.start >= 0.0
        assert span.finish == span.start
        assert span.duration == 0.0

    def test_unknown_task_ids_are_tolerated(self):
        tr = Tracer()
        tr.task_started(99)
        tr.task_finished(99)
        assert tr.wall_tasks == []


class TestTracingObserver:
    def test_on_task_captures_span(self):
        tr = Tracer()
        obs = TracingObserver(tr)
        obs.on_task(make_record(7, "axpy", point=2), [3, 5], 1, 0.5, 0.75, comm_time=0.1)
        (span,) = tr.task_spans
        assert span.task_id == 7
        assert span.deps == (3, 5)
        assert span.device_id == 1
        assert span.point == 2
        assert span.duration == 0.25
        assert span.comm_time == 0.1

    def test_event_categorization(self):
        tr = Tracer()
        obs = TracingObserver(tr)
        obs.on_barrier(1.0)
        obs.on_event("fault:crash:dot", 2.0, task_id=4)
        obs.on_event("recovery:rollback:crash", 3.0)
        obs.on_event("custom", 4.0)
        cats = [(e.name, e.category) for e in tr.events]
        assert cats == [
            ("barrier", "fence"),
            ("fault:crash:dot", "fault"),
            ("recovery:rollback:crash", "recovery"),
            ("custom", "event"),
        ]


class TestObservabilityBundle:
    def test_span_captures_and_probe_feeds_metrics(self):
        obs = Observability()
        with obs.span("solve:cg", category="solve", tolerance=1e-8):
            pass
        assert len(obs.tracer.phase_spans()) == 1
        obs.task_submitted(1, "t", 4, 2)
        obs.task_started(1, "w")
        obs.task_finished(1)
        obs.future_wait(10)
        obs.deadlock()
        obs.flush_overhead()
        snap = obs.metrics.snapshot()
        assert snap["counters"]["executor.tasks_submitted"] == 1.0
        assert snap["counters"]["executor.tasks_executed"] == 1.0
        assert snap["counters"]["executor.futures_waited"] == 1.0
        assert snap["counters"]["executor.deadlocks"] == 1.0
        assert snap["gauges"]["executor.queue_depth"]["value"] == 4.0
        assert snap["gauges"]["executor.workers_active"]["max"] == 1.0
        assert snap["histograms"]["executor.task_run_s"]["count"] == 1.0
        assert snap["histograms"]["executor.task_queued_s"]["count"] == 1.0

    def test_metrics_only_mode_has_no_tracer(self):
        obs = Observability(trace=False)
        assert obs.tracer is None
        assert obs.span("anything") is NULL_SPAN
        obs.task_submitted(1, "t", 0, 1)
        obs.task_finished(1)
        obs.flush_overhead()
        assert obs.metrics.snapshot()["counters"]["executor.tasks_executed"] == 1.0

    def test_disabled_bundle_is_fully_inert(self):
        obs = NULL_OBSERVABILITY
        assert obs.enabled is False
        assert obs.tracer is None
        assert obs.metrics.enabled is False
        with obs.span("x"):
            pass
        obs.task_submitted(1, "t", 0, 1)
        assert obs.metrics.snapshot()["counters"] == {}


class TestResolveObservability:
    def test_instance_passes_through(self):
        obs = Observability()
        assert resolve_observability(obs) is obs

    def test_true_false(self):
        assert resolve_observability(True).enabled is True
        assert resolve_observability(False) is NULL_OBSERVABILITY

    def test_env_off_values(self, monkeypatch):
        for value in ("", "0", "off", "FALSE", "no"):
            monkeypatch.setenv("REPRO_TRACE", value)
            assert resolve_observability(None) is NULL_OBSERVABILITY
        monkeypatch.delenv("REPRO_TRACE")
        assert resolve_observability(None) is NULL_OBSERVABILITY

    def test_env_metrics_and_full(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "metrics")
        obs = resolve_observability(None)
        assert obs.enabled and obs.tracer is None
        monkeypatch.setenv("REPRO_TRACE", "1")
        obs = resolve_observability(None)
        assert obs.enabled and obs.tracer is not None
