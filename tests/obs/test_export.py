"""Chrome-trace exporter, trace validation, and the stats document."""

import json

from repro.obs import (
    STATS_SCHEMA,
    TRACE_SCHEMA,
    Observability,
    chrome_trace,
    chrome_trace_events,
    stats_report,
    summarize_stats,
    validate_trace_events,
    validate_trace_file,
    write_trace,
)
from repro.obs.driver import run_traced

SIM_PID, WALL_PID = 1, 2


def traced_cg():
    obs, backend = run_traced("cg", size=16, pieces=2, iterations=2)
    return obs


class TestChromeTrace:
    def test_export_is_valid_and_has_both_process_lanes(self):
        obs = traced_cg()
        events = chrome_trace_events(obs.tracer)
        assert validate_trace_events(events) == []
        pids = {e.get("pid") for e in events}
        assert pids == {SIM_PID, WALL_PID}
        names = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "process_name"
        }
        assert names == {"simulated time", "wall clock"}

    def test_flow_events_pair_up_per_dependence_edge(self):
        obs = traced_cg()
        events = chrome_trace_events(obs.tracer)
        starts = [e for e in events if e.get("ph") == "s"]
        ends = [e for e in events if e.get("ph") == "f"]
        assert starts and len(starts) == len(ends)
        assert {e["id"] for e in starts} == {e["id"] for e in ends}
        assert all(e.get("bp") == "e" for e in ends)
        n_edges = sum(len(s.deps) for s in obs.tracer.task_spans)
        assert len(starts) == n_edges

    def test_task_slices_carry_dependences_and_comm(self):
        obs = traced_cg()
        events = chrome_trace_events(obs.tracer)
        slices = [
            e for e in events if e.get("ph") == "X" and e.get("pid") == SIM_PID
        ]
        assert len(slices) == len(obs.tracer.task_spans)
        assert all("comm_time_us" in e["args"] for e in slices)
        assert any(e["args"]["deps"] for e in slices)

    def test_phase_stream_appears_on_both_clocks(self):
        obs = traced_cg()
        events = chrome_trace_events(obs.tracer)
        for pid in (SIM_PID, WALL_PID):
            b_names = [
                e["name"]
                for e in events
                if e.get("ph") == "B" and e.get("pid") == pid
            ]
            assert any(n.startswith("solve:") for n in b_names)
            assert "iteration" in b_names
            assert any(n.startswith("step:") for n in b_names)

    def test_document_shape_and_file_round_trip(self, tmp_path):
        obs = traced_cg()
        doc = chrome_trace(obs.tracer)
        assert doc["otherData"]["schema"] == TRACE_SCHEMA
        assert doc["displayTimeUnit"] == "ms"
        path = tmp_path / "t.json"
        write_trace(obs.tracer, str(path))
        assert validate_trace_file(str(path)) == []
        reloaded = json.loads(path.read_text())
        assert reloaded["traceEvents"] == json.loads(json.dumps(doc))["traceEvents"]


class TestValidation:
    def test_non_monotonic_lane_is_flagged(self):
        events = [
            {"ph": "i", "pid": 1, "tid": 0, "ts": 5.0, "name": "a"},
            {"ph": "i", "pid": 1, "tid": 0, "ts": 1.0, "name": "b"},
        ]
        assert any("not monotonic" in e for e in validate_trace_events(events))

    def test_separate_lanes_do_not_interact(self):
        events = [
            {"ph": "i", "pid": 1, "tid": 0, "ts": 5.0, "name": "a"},
            {"ph": "i", "pid": 1, "tid": 1, "ts": 1.0, "name": "b"},
        ]
        assert validate_trace_events(events) == []

    def test_unmatched_and_mismatched_phase_pairs(self):
        assert any(
            "'E' without matching 'B'" in e
            for e in validate_trace_events(
                [{"ph": "E", "pid": 1, "tid": 0, "ts": 0.0, "name": "x"}]
            )
        )
        errors = validate_trace_events(
            [
                {"ph": "B", "pid": 1, "tid": 0, "ts": 0.0, "name": "x"},
                {"ph": "E", "pid": 1, "tid": 0, "ts": 1.0, "name": "y"},
            ]
        )
        assert any("does not match" in e for e in errors)
        errors = validate_trace_events(
            [{"ph": "B", "pid": 1, "tid": 0, "ts": 0.0, "name": "x"}]
        )
        assert any("unclosed 'B'" in e for e in errors)

    def test_bad_duration_missing_ts_and_orphan_flow(self):
        errors = validate_trace_events(
            [
                {"ph": "X", "pid": 1, "tid": 0, "ts": 0.0, "dur": -1.0, "name": "x"},
                {"ph": "i", "pid": 1, "tid": 0, "name": "no-ts"},
                {"ph": "f", "pid": 1, "tid": 0, "ts": 0.0, "id": 42, "name": "dep"},
                {"ph": "i", "pid": 1, "tid": 0, "ts": -2.0, "name": "neg"},
            ]
        )
        assert any("invalid dur" in e for e in errors)
        assert any("non-numeric ts" in e for e in errors)
        assert any("no matching 's'" in e for e in errors)
        assert any("negative ts" in e for e in errors)

    def test_metadata_is_exempt(self):
        events = [
            {"ph": "M", "pid": 1, "name": "process_name", "args": {"name": "p"}},
            {"ph": "i", "pid": 1, "tid": 0, "ts": 0.0, "name": "a"},
        ]
        assert validate_trace_events(events) == []


class TestStatsReport:
    def test_document_contents(self):
        obs = traced_cg()
        stats = stats_report(obs)
        assert stats["schema"] == STATS_SCHEMA
        assert stats["metrics"]["counters"]["executor.tasks_executed"] > 0
        assert stats["critical_path"]["n_tasks"] == len(obs.tracer.task_spans)
        assert stats["critical_path"]["length_s"] > 0.0
        some_task = next(iter(stats["tasks"].values()))
        assert set(some_task) == {
            "count",
            "total_time_s",
            "mean_time_s",
            "total_comm_s",
            "p50",
            "p95",
            "p99",
        }
        # Percentiles must land between the extremes of the aggregate.
        assert some_task["p50"] <= some_task["p95"] <= some_task["p99"]
        some_wall = next(iter(stats["wall_tasks"].values()))
        assert set(some_wall) == {
            "count",
            "total_s",
            "mean_s",
            "queued_s",
            "p50",
            "p95",
            "p99",
        }
        some_phase = next(iter(stats["phases"].values()))
        assert {"count", "total_wall_s", "mean_wall_s", "total_sim_s"} <= set(
            some_phase
        )
        # The whole document must be JSON-serializable for --json.
        json.dumps(stats)

    def test_metrics_only_bundle_has_no_task_sections(self):
        obs = Observability(trace=False)
        obs.metrics.counter("x").inc()
        stats = stats_report(obs)
        assert stats["tasks"] == {}
        assert stats["wall_tasks"] == {}
        assert stats["phases"] == {}
        assert stats["critical_path"] is None

    def test_summary_text(self):
        obs = traced_cg()
        text = summarize_stats(stats_report(obs))
        assert "critical path:" in text
        assert "comm hidden under compute" in text
        assert "slack by task name" in text
        assert "executor.tasks_executed" in text

    def test_summary_of_empty_document(self):
        assert summarize_stats({}) == "(no observability data captured)"
