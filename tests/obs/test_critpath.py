"""Critical-path CPM on hand-built span graphs."""

import pytest

from repro.obs.critpath import critical_path
from repro.obs.tracing import TaskSpan


def span(tid, name, start, finish, deps=(), comm=0.0, device=0):
    return TaskSpan(
        task_id=tid,
        name=name,
        device_id=device,
        start=start,
        finish=finish,
        comm_time=comm,
        deps=tuple(deps),
    )


class TestChain:
    def test_empty_input(self):
        report = critical_path([])
        assert report.n_tasks == 0
        assert report.length == 0.0
        assert report.path == []
        assert report.comm_overlap_fraction == 0.0
        assert report.parallelism == 0.0

    def test_straight_chain_has_zero_slack(self):
        spans = [
            span(1, "a", 0.0, 1.0),
            span(2, "b", 1.0, 3.0, deps=[1]),
            span(3, "c", 3.0, 6.0, deps=[2]),
        ]
        report = critical_path(spans)
        assert report.makespan == 6.0
        assert report.length == pytest.approx(6.0)
        assert [name for _, name in report.path] == ["a", "b", "c"]
        for stats in report.per_name.values():
            assert stats.min_slack == 0.0
            assert stats.on_critical_path == 1

    def test_parallel_branch_gets_slack(self):
        # a -> c is the long chain; b runs beside it with room to spare.
        spans = [
            span(1, "a", 0.0, 4.0),
            span(2, "b", 0.0, 1.0, device=1),
            span(3, "c", 4.0, 6.0, deps=[1, 2]),
        ]
        report = critical_path(spans)
        assert [name for _, name in report.path] == ["a", "c"]
        assert report.length == pytest.approx(6.0)
        b = report.per_name["b"]
        # b could finish as late as c's latest start (4.0): slack 3.0.
        assert b.min_slack == pytest.approx(3.0)
        assert b.on_critical_path == 0
        assert report.per_name["a"].on_critical_path == 1
        # parallelism: 7 task-seconds over a 6 s makespan.
        assert report.parallelism == pytest.approx(7.0 / 6.0)

    def test_length_counts_durations_not_gaps(self):
        # Dependence chain with an idle gap: the chain length sums task
        # durations only, while the makespan includes the gap.
        spans = [
            span(1, "a", 0.0, 1.0),
            span(2, "b", 5.0, 6.0, deps=[1]),
        ]
        report = critical_path(spans)
        assert report.makespan == 6.0
        assert report.length == pytest.approx(2.0)

    def test_per_name_aggregation(self):
        spans = [
            span(1, "axpy", 0.0, 1.0),
            span(2, "axpy", 1.0, 3.0, deps=[1]),
        ]
        report = critical_path(spans)
        stats = report.per_name["axpy"]
        assert stats.count == 2
        assert stats.total_time == pytest.approx(3.0)
        assert stats.mean_slack == 0.0
        d = stats.to_dict()
        assert d["count"] == 2
        assert d["on_critical_path"] == 2


class TestCommOverlap:
    def test_fully_hidden_comm(self):
        # b's transfer window [1, 2] sits entirely under a's compute.
        spans = [
            span(1, "a", 0.0, 4.0),
            span(2, "b", 2.0, 3.0, deps=[1], comm=1.0, device=1),
        ]
        report = critical_path(spans)
        assert report.total_comm == pytest.approx(1.0)
        assert report.hidden_comm == pytest.approx(1.0)
        assert report.comm_overlap_fraction == pytest.approx(1.0)

    def test_exposed_comm(self):
        # The transfer window [1, 3] only overlaps compute during [1, 2].
        spans = [
            span(1, "a", 0.0, 2.0),
            span(2, "b", 3.0, 4.0, deps=[1], comm=2.0),
        ]
        report = critical_path(spans)
        assert report.total_comm == pytest.approx(2.0)
        assert report.hidden_comm == pytest.approx(1.0)
        assert report.comm_overlap_fraction == pytest.approx(0.5)

    def test_no_comm_reports_zero_fraction(self):
        report = critical_path([span(1, "a", 0.0, 1.0)])
        assert report.comm_overlap_fraction == 0.0


class TestReportRendering:
    def test_to_dict_and_summary(self):
        spans = [
            span(1, "a", 0.0, 1.0),
            span(2, "b", 1.0, 2.0, deps=[1], comm=0.5),
        ]
        report = critical_path(spans)
        d = report.to_dict()
        assert d["n_tasks"] == 2
        assert d["path_length"] == 2
        assert d["path"][0] == {"task_id": 1, "name": "a"}
        assert set(d["per_name"]) == {"a", "b"}
        text = report.summary()
        assert "critical path:" in text
        assert "*critical*" in text
        assert "comm hidden under compute" in text
