"""Observability wired through Runtime, solvers, and executors."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import make_planner
from repro.core import CGSolver
from repro.obs import NULL_OBSERVABILITY, Observability, TracingObserver
from repro.obs.driver import run_traced
from repro.runtime import Runtime


def poisson(n=32):
    A = sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n), format="csr")
    return A, np.ones(n)


class TestRuntimeWiring:
    def test_default_runtime_is_unobserved(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        rt = Runtime()
        try:
            assert rt.obs is NULL_OBSERVABILITY
            assert rt.executor.probe is None
            assert not any(
                isinstance(o, TracingObserver) for o in rt.engine.observers
            )
        finally:
            rt.executor.shutdown()

    def test_observability_false_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        rt = Runtime(observability=False)
        try:
            assert rt.obs is NULL_OBSERVABILITY
        finally:
            rt.executor.shutdown()

    def test_env_enables_tracing(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        rt = Runtime()
        try:
            assert rt.obs.enabled
            assert rt.obs.tracer is not None
            assert rt.executor.probe is rt.obs
            assert any(
                isinstance(o, TracingObserver) for o in rt.engine.observers
            )
        finally:
            rt.executor.shutdown()

    def test_enabled_runtime_attaches_probe_and_observer(self):
        rt = Runtime(observability=True)
        try:
            assert rt.executor.probe is rt.obs
            assert any(
                isinstance(o, TracingObserver) for o in rt.engine.observers
            )
        finally:
            rt.executor.shutdown()


class TestSolverInstrumentation:
    def test_solve_populates_spans_series_and_cost_counters(self):
        rt = Runtime(observability=True)
        try:
            A, b = poisson()
            planner = make_planner(A, b, n_pieces=2, runtime=rt)
            result = CGSolver(planner).solve(tolerance=1e-10, max_iterations=40)
            rt.sync()
        finally:
            rt.executor.shutdown()
        obs = rt.obs
        series = obs.metrics.series("solver.cg.residual")
        assert series.values == pytest.approx(result.measure_history)
        obs.flush_overhead()
        snap = obs.metrics.snapshot()
        assert snap["counters"]["step.flops"] > 0.0
        assert snap["counters"]["executor.tasks_executed"] > 0.0
        names = [s.name for s in obs.tracer.phase_spans()]
        assert "solve:cg" in names
        assert "iteration" in names
        assert "step:cg" in names
        # step spans carry per-step cost deltas.
        step_spans = [
            s for s in obs.tracer.phase_spans() if s.name == "step:cg"
        ]
        assert step_spans
        assert all("flops" in s.args for s in step_spans)
        assert sum(s.args["flops"] for s in step_spans) == pytest.approx(
            snap["counters"]["step.flops"]
        )

    def test_disabled_solve_pays_no_observability(self):
        rt = Runtime(observability=False)
        try:
            A, b = poisson()
            planner = make_planner(A, b, n_pieces=2, runtime=rt)
            result = CGSolver(planner).solve(tolerance=1e-10, max_iterations=40)
            rt.sync()
        finally:
            rt.executor.shutdown()
        assert result.converged
        assert rt.obs.metrics.snapshot()["counters"] == {}


class TestBackends:
    def test_threads_backend_fills_wall_track(self):
        obs, backend = run_traced(
            "cg", backend="threads", size=16, pieces=2, iterations=2, jobs=2
        )
        assert backend == "threads"
        tracer = obs.tracer
        assert tracer.task_spans
        done = [w for w in tracer.wall_tasks if w.finish >= 0.0]
        assert len(done) == len(tracer.wall_tasks)
        assert {w.worker for w in done}  # worker attribution present
        assert tracer.queue_samples
        assert tracer.occupancy_samples
        assert max(n for _, n in tracer.occupancy_samples) >= 1

    def test_serial_and_threads_agree_on_simulated_track(self):
        obs_s, _ = run_traced("cg", backend="serial", size=16, pieces=2, iterations=2)
        obs_t, _ = run_traced(
            "cg", backend="threads", size=16, pieces=2, iterations=2, jobs=2
        )
        sim = lambda obs: [
            (s.name, s.device_id, s.start, s.finish)
            for s in sorted(obs.tracer.task_spans, key=lambda s: s.task_id)
        ]
        assert sim(obs_s) == sim(obs_t)

    def test_executed_count_matches_simulated_spans(self):
        obs, _ = run_traced("fig8-cg", size=64, pieces=4, iterations=2)
        obs.flush_overhead()
        snap = obs.metrics.snapshot()
        assert snap["counters"]["executor.tasks_executed"] == len(
            obs.tracer.task_spans
        )
