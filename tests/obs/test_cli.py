"""CLI surface: ``repro trace``, ``repro stats``, ``repro profile``."""

import json

from repro.cli import main
from repro.obs import validate_trace_file
from repro.obs.rollup import iter_jsonl


class TestTraceCommand:
    def test_writes_valid_trace_and_checks_clean(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            ["trace", "cg", "--size", "16", "--pieces", "2",
             "--iterations", "2", "--out", str(out), "--check"]
        )
        assert code == 0
        assert validate_trace_file(str(out)) == []
        text = capsys.readouterr().out
        assert "task spans" in text
        assert "trace check: OK" in text
        doc = json.loads(out.read_text())
        assert doc["otherData"]["schema"] == "repro-trace/1"
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_threads_backend(self, tmp_path):
        out = tmp_path / "trace.json"
        code = main(
            ["trace", "fig8-cg", "--backend", "threads", "--jobs", "2",
             "--size", "64", "--pieces", "4", "--iterations", "2",
             "--out", str(out), "--check"]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        wall_slices = [
            e
            for e in doc["traceEvents"]
            if e.get("ph") == "X" and e.get("pid") == 2
        ]
        assert wall_slices

    def test_unknown_program_exits_2(self, tmp_path, capsys):
        code = main(["trace", "nonsense", "--out", str(tmp_path / "t.json")])
        assert code == 2
        assert "trace:" in capsys.readouterr().out

    def test_sampled_trace_thins_spans_and_says_so(self, tmp_path, capsys):
        full = tmp_path / "full.json"
        assert main(["trace", "cg", "--size", "16", "--pieces", "2",
                     "--iterations", "3", "--out", str(full)]) == 0
        sampled = tmp_path / "sampled.json"
        code = main(["trace", "cg", "--size", "16", "--pieces", "2",
                     "--iterations", "3", "--sample", "0.2",
                     "--out", str(sampled), "--check"])
        assert code == 0
        assert "(sampled:0.2)" in capsys.readouterr().out
        n_full = sum(
            1 for e in json.loads(full.read_text())["traceEvents"]
            if e.get("ph") == "X"
        )
        n_sampled = sum(
            1 for e in json.loads(sampled.read_text())["traceEvents"]
            if e.get("ph") == "X"
        )
        assert 0 < n_sampled < n_full


class TestStatsCommand:
    def test_text_output(self, capsys):
        code = main(["stats", "cg", "--size", "16", "--pieces", "2",
                     "--iterations", "2"])
        assert code == 0
        text = capsys.readouterr().out
        assert "critical path:" in text
        assert "slack by task name" in text

    def test_json_to_stdout(self, capsys):
        code = main(["stats", "cg", "--size", "16", "--pieces", "2",
                     "--iterations", "2", "--json"])
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["schema"] == "repro-stats/2"
        assert all(
            {"p50", "p95", "p99"} <= set(entry) for entry in stats["tasks"].values()
        )
        assert all(
            {"p50", "p95", "p99"} <= set(entry)
            for entry in stats["wall_tasks"].values()
        )
        assert all(
            {"p50", "p95", "p99"} <= set(entry) for entry in stats["phases"].values()
        )
        assert stats["program"] == "cg"
        assert stats["backend"] == "serial"
        assert stats["critical_path"]["path_length"] > 0
        assert "comm_overlap_fraction" in stats["critical_path"]
        per_name = stats["critical_path"]["per_name"]
        assert all("min_slack_s" in entry for entry in per_name.values())

    def test_json_to_file(self, tmp_path, capsys):
        out = tmp_path / "stats.json"
        code = main(["stats", "cg", "--size", "16", "--pieces", "2",
                     "--iterations", "2", "--json", str(out)])
        assert code == 0
        assert "stats written to" in capsys.readouterr().out
        stats = json.loads(out.read_text())
        assert stats["metrics"]["counters"]["executor.tasks_executed"] > 0

    def test_unknown_program_exits_2(self, capsys):
        assert main(["stats", "nonsense"]) == 2
        assert "stats:" in capsys.readouterr().out

    def test_rollup_jsonl_export(self, tmp_path, capsys):
        out = tmp_path / "rollups.jsonl"
        code = main(["stats", "cg", "--size", "16", "--pieces", "2",
                     "--iterations", "2", "--rollup", str(out),
                     "--rollup-window", "0.05"])
        assert code == 0
        assert "rollup records" in capsys.readouterr().out
        records = iter_jsonl(out.read_text().splitlines())
        assert records
        names = {r["name"] for r in records}
        assert any(n.startswith("task.") for n in names)
        for rec in records:
            assert rec["labels"]["solver"] == "cg"
            assert rec["labels"]["backend"] == "serial"
            assert rec["window_s"] == 0.05


class TestProfileCommand:
    def run_stats(self, tmp_path, name, env=None, monkeypatch=None):
        out = tmp_path / f"{name}.json"
        if env:
            for k, v in env.items():
                monkeypatch.setenv(k, v)
        try:
            assert main(["stats", "fig8-cg", "--size", "48", "--pieces", "4",
                         "--iterations", "3", "--json", str(out)]) == 0
        finally:
            if env and monkeypatch:
                for k in env:
                    monkeypatch.delenv(k, raising=False)
        return out

    def test_self_diff_is_neutral_and_exits_zero(self, tmp_path, capsys):
        a = self.run_stats(tmp_path, "a")
        code = main(["profile", "--diff", str(a), str(a), "--fail-on-regression"])
        assert code == 0
        assert "verdict: neutral" in capsys.readouterr().out

    def test_injected_stall_fails_the_gate_and_names_the_task(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        base = self.run_stats(tmp_path, "base")
        cand = self.run_stats(
            tmp_path, "cand",
            env={"REPRO_FAULTS": "stall:axpy:5:80"}, monkeypatch=monkeypatch,
        )
        out = tmp_path / "diff.json"
        code = main(["profile", "--diff", str(base), str(cand),
                     "--fail-on-regression", "--json", str(out)])
        assert code == 1
        diff = json.loads(out.read_text())
        assert diff["schema"] == "repro-profilediff/1"
        assert diff["verdict"] == "regression"
        assert "axpy" in diff["top_regression"]

    def test_bad_input_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{\"schema\": \"nope/1\"}")
        assert main(["profile", "--diff", str(bogus), str(bogus)]) == 2
        assert "profile:" in capsys.readouterr().out
