"""CLI surface: ``repro trace`` and ``repro stats``."""

import json

from repro.cli import main
from repro.obs import validate_trace_file


class TestTraceCommand:
    def test_writes_valid_trace_and_checks_clean(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            ["trace", "cg", "--size", "16", "--pieces", "2",
             "--iterations", "2", "--out", str(out), "--check"]
        )
        assert code == 0
        assert validate_trace_file(str(out)) == []
        text = capsys.readouterr().out
        assert "task spans" in text
        assert "trace check: OK" in text
        doc = json.loads(out.read_text())
        assert doc["otherData"]["schema"] == "repro-trace/1"
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_threads_backend(self, tmp_path):
        out = tmp_path / "trace.json"
        code = main(
            ["trace", "fig8-cg", "--backend", "threads", "--jobs", "2",
             "--size", "64", "--pieces", "4", "--iterations", "2",
             "--out", str(out), "--check"]
        )
        assert code == 0
        doc = json.loads(out.read_text())
        wall_slices = [
            e
            for e in doc["traceEvents"]
            if e.get("ph") == "X" and e.get("pid") == 2
        ]
        assert wall_slices

    def test_unknown_program_exits_2(self, tmp_path, capsys):
        code = main(["trace", "nonsense", "--out", str(tmp_path / "t.json")])
        assert code == 2
        assert "trace:" in capsys.readouterr().out


class TestStatsCommand:
    def test_text_output(self, capsys):
        code = main(["stats", "cg", "--size", "16", "--pieces", "2",
                     "--iterations", "2"])
        assert code == 0
        text = capsys.readouterr().out
        assert "critical path:" in text
        assert "slack by task name" in text

    def test_json_to_stdout(self, capsys):
        code = main(["stats", "cg", "--size", "16", "--pieces", "2",
                     "--iterations", "2", "--json"])
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["schema"] == "repro-stats/1"
        assert stats["program"] == "cg"
        assert stats["backend"] == "serial"
        assert stats["critical_path"]["path_length"] > 0
        assert "comm_overlap_fraction" in stats["critical_path"]
        per_name = stats["critical_path"]["per_name"]
        assert all("min_slack_s" in entry for entry in per_name.values())

    def test_json_to_file(self, tmp_path, capsys):
        out = tmp_path / "stats.json"
        code = main(["stats", "cg", "--size", "16", "--pieces", "2",
                     "--iterations", "2", "--json", str(out)])
        assert code == 0
        assert "stats written to" in capsys.readouterr().out
        stats = json.loads(out.read_text())
        assert stats["metrics"]["counters"]["executor.tasks_executed"] > 0

    def test_unknown_program_exits_2(self, capsys):
        assert main(["stats", "nonsense"]) == 2
        assert "stats:" in capsys.readouterr().out
