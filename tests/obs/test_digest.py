"""Property suites for the mergeable quantile digest and reservoir.

The digest's contract has three load-bearing clauses the rollup and
metrics layers depend on:

* **rank-error bound** — ``quantile(q)`` lands within an
  ``O(1/compression)`` rank band of the exact order statistic;
* **merge algebra** — merging digests estimates the quantiles of the
  concatenated streams regardless of how the stream was split or the
  order the pieces were folded in (per-worker sketches → fleet-wide
  percentiles);
* **bounded memory** — centroid count (and ``nbytes``) stays fixed as
  the stream grows without bound.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.digest import QuantileDigest, Reservoir

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


def exact_rank(sorted_values, x):
    """Number of stream values strictly below ``x``."""
    lo, hi = 0, len(sorted_values)
    while lo < hi:
        mid = (lo + hi) // 2
        if sorted_values[mid] < x:
            lo = mid + 1
        else:
            hi = mid
    return lo


def assert_rank_error_bounded(values, digest, quantiles=(0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99)):
    """The estimate's *rank* in the true stream must sit within an
    epsilon band of ``q`` — the t-digest guarantee is on rank, not on
    value (a value bound is impossible for adversarial gaps)."""
    ordered = sorted(values)
    n = len(ordered)
    # Dunning's bound is O(1/delta) on mid quantiles; the constant here
    # is deliberately loose (6/delta + small-n slop) so the test pins
    # the *scaling*, not one implementation's constant.
    eps = 6.0 / digest.compression + 2.0 / max(n, 1)
    for q in quantiles:
        est = digest.quantile(q)
        rank_lo = exact_rank(ordered, est) / n  # fraction strictly below
        rank_hi = sum(1 for v in ordered if v <= est) / n  # at or below
        assert rank_lo - eps <= q <= rank_hi + eps, (
            f"q={q}: estimate {est} has rank band [{rank_lo}, {rank_hi}], "
            f"outside eps={eps}"
        )


class TestRankError:
    @given(
        st.lists(finite_floats, min_size=1, max_size=2000),
        st.sampled_from([16, 50, 100, 200]),
    )
    @settings(max_examples=60, deadline=None)
    def test_rank_error_within_epsilon_band(self, values, compression):
        digest = QuantileDigest(compression=compression)
        digest.extend(values)
        assert_rank_error_bounded(values, digest)

    @given(st.lists(finite_floats, min_size=1, max_size=500))
    @settings(max_examples=40, deadline=None)
    def test_extremes_are_exact(self, values):
        digest = QuantileDigest()
        digest.extend(values)
        assert digest.quantile(0.0) == pytest.approx(min(values))
        assert digest.quantile(1.0) == pytest.approx(max(values))
        assert digest.min == min(values)
        assert digest.max == max(values)
        assert digest.count == len(values)

    def test_heavy_tail_p99_stays_sharp(self):
        rng = random.Random(7)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(50_000)]
        digest = QuantileDigest(compression=100)
        digest.extend(values)
        ordered = sorted(values)
        for q in (0.95, 0.99, 0.999):
            est = digest.quantile(q)
            rank = exact_rank(ordered, est) / len(ordered)
            assert abs(rank - q) < 0.01


class TestMergeAlgebra:
    @given(
        st.lists(finite_floats, min_size=0, max_size=400),
        st.lists(finite_floats, min_size=0, max_size=400),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_commutes(self, xs, ys):
        """merge(A, B) and merge(B, A) summarize the same stream, so
        their quantile estimates must agree within the rank bound."""
        ab = QuantileDigest()
        ab.extend(xs)
        other = QuantileDigest()
        other.extend(ys)
        ab.merge(other)

        ba = QuantileDigest()
        ba.extend(ys)
        other = QuantileDigest()
        other.extend(xs)
        ba.merge(other)

        combined = xs + ys
        assert ab.count == pytest.approx(ba.count) == len(combined)
        if combined:
            assert_rank_error_bounded(combined, ab)
            assert_rank_error_bounded(combined, ba)

    @given(
        st.lists(finite_floats, min_size=1, max_size=900),
        st.integers(min_value=1, max_value=7),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_associates_over_arbitrary_splits(self, values, n_parts, rnd):
        """Split the stream into k shards, fold them together in a
        shuffled order: the result must still estimate the full stream
        (this is the per-worker → fleet rollup path)."""
        shards = [QuantileDigest() for _ in range(n_parts)]
        for v in values:
            shards[rnd.randrange(n_parts)].add(v)
        rnd.shuffle(shards)
        acc = shards[0]
        for shard in shards[1:]:
            acc.merge(shard)
        assert acc.count == pytest.approx(len(values))
        assert_rank_error_bounded(values, acc)

    def test_merge_empty_is_identity(self):
        digest = QuantileDigest()
        digest.extend([1.0, 2.0, 3.0])
        before = digest.to_dict()
        digest.merge(QuantileDigest())
        assert digest.to_dict() == before

    @given(st.lists(finite_floats, min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_through_dict(self, values):
        digest = QuantileDigest()
        digest.extend(values)
        clone = QuantileDigest.from_dict(digest.to_dict())
        for q in (0.1, 0.5, 0.9):
            assert clone.quantile(q) == pytest.approx(digest.quantile(q))
        assert clone.count == digest.count


class TestBoundedMemory:
    def test_centroids_and_bytes_bounded_as_stream_grows(self):
        digest = QuantileDigest(compression=100)
        rng = random.Random(3)
        checkpoints = []
        for i in range(200_000):
            digest.add(rng.random())
            if i in (9_999, 99_999, 199_999):
                checkpoints.append((digest.n_centroids(), digest.nbytes()))
        for n_centroids, nbytes in checkpoints:
            # The greedy weight-bound variant settles around 4-5x the
            # compression parameter; the point is O(compression), not
            # the constant.
            assert n_centroids <= 8 * digest.compression
            assert nbytes <= 16 * 8 * digest.compression + 64
        # 20x more data must not mean more retained state.
        assert checkpoints[-1][1] <= 2 * checkpoints[0][1] + 1024

    def test_reservoir_keeps_recent_tail_exact_and_memory_fixed(self):
        res = Reservoir(capacity=128)
        for i in range(10_000):
            res.append(float(i))
        assert len(res) == 10_000
        assert res.values == [float(i) for i in range(10_000 - 128, 10_000)]
        assert res.last == 9999.0
        # Digest still covers the whole stream.
        assert res.digest.count == 10_000
        assert res.digest.quantile(0.5) == pytest.approx(5000.0, rel=0.05)
        assert res.nbytes() < 64 * 1024
