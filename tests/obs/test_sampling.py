"""Sampled tracing: deterministic task selection, backend independence,
and bounded telemetry memory on long streams."""

import pytest

from repro.obs import Observability
from repro.obs.driver import run_traced


class TestSampleFunction:
    def test_decision_is_pure_and_seed_stable(self):
        a = Observability(sample_rate=0.3, sample_seed=7)
        b = Observability(sample_rate=0.3, sample_seed=7)
        ids = range(5000)
        assert [a.sample(i) for i in ids] == [b.sample(i) for i in ids]

    def test_different_seeds_pick_different_subsets(self):
        a = Observability(sample_rate=0.3, sample_seed=1)
        b = Observability(sample_rate=0.3, sample_seed=2)
        picks_a = {i for i in range(5000) if a.sample(i)}
        picks_b = {i for i in range(5000) if b.sample(i)}
        assert picks_a != picks_b

    def test_rate_extremes(self):
        assert all(Observability(sample_rate=1.0).sample(i) for i in range(100))
        assert not any(Observability(sample_rate=0.0).sample(i) for i in range(100))

    def test_sampled_fraction_tracks_rate(self):
        for rate in (0.1, 0.5, 0.9):
            obs = Observability(sample_rate=rate, sample_seed=0)
            frac = sum(obs.sample(i) for i in range(20_000)) / 20_000
            assert frac == pytest.approx(rate, abs=0.02)

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="sample_rate"):
            Observability(sample_rate=1.5)
        with pytest.raises(ValueError, match="sample_rate"):
            Observability(sample_rate=-0.1)


def sampled_wall_ids(obs):
    return sorted(s.task_id for s in obs.tracer.wall_tasks)


def sampled_sim_ids(obs):
    return sorted(s.task_id for s in obs.tracer.task_spans)


class TestBackendDeterminism:
    """The same program sampled at the same (rate, seed) must select the
    same task subset on every backend — task ids are launch-ordered and
    the decision hashes only (seed, task_id).  In production every run
    is a fresh process, so each driver run here restarts the global task
    id counter to reproduce that."""

    RATE = 0.25

    def run(self, backend, **kw):
        import itertools

        from repro.runtime import task as task_mod

        counter_before = task_mod._task_counter
        task_mod._task_counter = itertools.count(1)
        try:
            obs, resolved = run_traced(
                "fig8-cg",
                backend=backend,
                size=32,
                pieces=4,
                iterations=3,
                sample_rate=self.RATE,
                seed=0,
                **kw,
            )
        finally:
            task_mod._task_counter = counter_before
        return obs, resolved

    def test_serial_threads_select_identical_subsets(self):
        obs_s, _ = self.run("serial")
        obs_t, _ = self.run("threads", jobs=2)
        assert sampled_wall_ids(obs_s) == sampled_wall_ids(obs_t)
        assert sampled_sim_ids(obs_s) == sampled_sim_ids(obs_t)
        # Sampling actually thinned the stream (not all, not none).
        obs_full, _ = run_traced(
            "fig8-cg", backend="serial", size=32, pieces=4, iterations=3
        )
        n_total = len(obs_full.tracer.wall_tasks)
        n_sampled = len(obs_s.tracer.wall_tasks)
        assert 0 < n_sampled < n_total

    def test_procs_selects_the_same_subset(self):
        """Sampling decisions are made parent-side at submit, so the
        procs backend (worker processes, span batches shipped back with
        results) must agree with serial exactly."""
        obs_s, _ = self.run("serial")
        obs_p, resolved = self.run("procs", jobs=2)
        assert resolved == "procs"
        assert sampled_wall_ids(obs_s) == sampled_wall_ids(obs_p)
        assert sampled_sim_ids(obs_s) == sampled_sim_ids(obs_p)

    def test_counters_stay_exact_under_sampling(self):
        """Sampling drops spans, never counts: tasks_submitted must
        equal the unsampled run's count, with tasks_sampled the subset."""
        obs, _ = self.run("serial")
        obs.flush_overhead()
        counters = obs.metrics.snapshot()["counters"]
        obs_full, _ = run_traced(
            "fig8-cg", backend="serial", size=32, pieces=4, iterations=3
        )
        obs_full.flush_overhead()
        full = obs_full.metrics.snapshot()["counters"]
        assert counters["executor.tasks_submitted"] == full["executor.tasks_submitted"]
        assert counters["executor.tasks_executed"] == full["executor.tasks_executed"]
        assert (
            0
            < counters["executor.tasks_sampled"]
            < counters["executor.tasks_submitted"]
        )


class TestBoundedTelemetryMemory:
    def test_million_sample_stream_stays_under_byte_budget(self):
        """A service observing 10^6 task latencies must hold the whole
        history in bounded sketches: the registry's retained payload
        stays under a fixed byte budget and stops growing."""
        obs = Observability(trace=False)
        h = obs.metrics.histogram("executor.task_run_s")
        mid = 0
        for i in range(1_000_000):
            h.observe((i % 1013) * 1e-6)
            if i == 99_999:
                mid = obs.metrics.nbytes()
        obs.flush_overhead()
        final = obs.metrics.nbytes()
        # Absolute budget: well under a megabyte for a million samples.
        assert final < 256 * 1024, f"registry holds {final} bytes"
        # And flat: 10x more samples didn't grow retained state.
        assert final <= 2 * mid + 4096
        summary = h.summary()
        assert summary["count"] == 1_000_000.0
        assert summary["p50"] == pytest.approx(506e-6, rel=0.1)

    def test_series_history_is_bounded(self):
        obs = Observability(trace=False)
        s = obs.metrics.series("solver.cg.residual")
        for i in range(100_000):
            s.append(1.0 / (i + 1))
        assert len(s) == 100_000
        assert len(s.values) < 100_000  # tail only
        assert s.nbytes() < 128 * 1024
        # Full-stream distribution still queryable through the digest.
        assert s.digest.count == 100_000
