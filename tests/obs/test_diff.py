"""Profile diff: alignment, slack-weighted ranking, verdicts — and the
end-to-end acceptance case: an injected stall must be attributed as the
top regression between two otherwise identical runs."""

import json

import pytest

from repro.obs.diff import (
    DIFF_SCHEMA,
    load_stats,
    profile_diff,
    summarize_diff,
)
from repro.obs.driver import run_traced
from repro.obs.export import stats_report


def stats_doc(wall_tasks, critical_path=None, phases=None):
    doc = {
        "schema": "repro-stats/2",
        "metrics": {},
        "tasks": {},
        "wall_tasks": wall_tasks,
        "phases": phases or {},
        "critical_path": critical_path,
    }
    return doc


def wall_entry(mean_s, count=10, p95=None):
    return {
        "count": count,
        "mean_s": mean_s,
        "total_s": mean_s * count,
        "p95": p95 if p95 is not None else mean_s,
    }


class TestVerdicts:
    def test_self_diff_is_neutral(self):
        doc = stats_doc({"spmv": wall_entry(1e-3), "axpy": wall_entry(2e-4)})
        diff = profile_diff(doc, doc)
        assert diff["schema"] == DIFF_SCHEMA
        assert diff["verdict"] == "neutral"
        assert diff["top_regression"] is None
        assert diff["n_regressed"] == 0

    def test_slowdown_is_a_regression(self):
        a = stats_doc({"spmv": wall_entry(1e-3)})
        b = stats_doc({"spmv": wall_entry(5e-3)})
        diff = profile_diff(a, b)
        assert diff["verdict"] == "regression"
        assert diff["top_regression"] == "spmv"
        assert diff["tasks"][0]["regressed"]

    def test_speedup_is_an_improvement(self):
        a = stats_doc({"spmv": wall_entry(5e-3)})
        b = stats_doc({"spmv": wall_entry(1e-3)})
        diff = profile_diff(a, b)
        assert diff["verdict"] == "improvement"
        assert diff["top_regression"] is None

    def test_thresholds_gate_small_deltas(self):
        a = stats_doc({"spmv": wall_entry(1e-3)})
        b = stats_doc({"spmv": wall_entry(1.1e-3)})
        assert profile_diff(a, b)["verdict"] == "neutral"
        # Tightening the relative threshold flips it.
        diff = profile_diff(a, b, rel_threshold=0.05, abs_threshold_s=1e-6)
        assert diff["verdict"] == "regression"

    def test_new_and_removed_tasks_are_marked_not_regressed(self):
        a = stats_doc({"spmv": wall_entry(1e-3)})
        b = stats_doc({"spmv": wall_entry(1e-3), "precond": wall_entry(9e-3)})
        diff = profile_diff(a, b)
        rows = {r["name"]: r for r in diff["tasks"]}
        assert rows["precond"]["only_in"] == "b"
        assert not rows["precond"]["regressed"]
        assert diff["verdict"] == "neutral"


class TestSlackWeighting:
    def test_critical_path_delta_outranks_bigger_slack_delta(self):
        """A +2ms delta on a zero-slack task must outrank a +3ms delta
        on a task with 80% slack — slack absorbs the latter invisibly."""
        crit = {
            "makespan_s": 1.0,
            "per_name": {
                "crit_task": {"on_critical_path": True, "mean_slack_s": 0.0},
                "slack_task": {"on_critical_path": False, "mean_slack_s": 0.8},
            },
        }
        a = stats_doc(
            {"crit_task": wall_entry(1e-3), "slack_task": wall_entry(1e-3)},
            critical_path=crit,
        )
        b = stats_doc(
            {"crit_task": wall_entry(3e-3), "slack_task": wall_entry(4e-3)},
            critical_path=crit,
        )
        diff = profile_diff(a, b)
        assert diff["tasks"][0]["name"] == "crit_task"
        assert diff["tasks"][0]["on_critical_path"]
        assert diff["top_regression"] == "crit_task"
        # Raw delta ordering would have put slack_task first.
        raw = {r["name"]: r["delta_total_s"] for r in diff["tasks"]}
        assert raw["slack_task"] > raw["crit_task"]


class TestSchemaFallback:
    def test_stats_v1_documents_diff_on_the_simulated_track(self):
        """repro-stats/1 baselines predate wall aggregates: the diff
        must fall back to the simulated per-task table."""

        def v1(mean):
            return {
                "schema": "repro-stats/1",
                "tasks": {
                    "spmv": {
                        "count": 10,
                        "mean_time_s": mean,
                        "total_time_s": mean * 10,
                    }
                },
            }

        diff = profile_diff(v1(1e-3), v1(6e-3))
        assert diff["verdict"] == "regression"
        assert diff["top_regression"] == "spmv"
        assert diff["tasks"][0]["clock"] == "sim"
        assert diff["baseline_schema"] == "repro-stats/1"

    def test_phase_regressions_are_reported(self):
        a = stats_doc(
            {"spmv": wall_entry(1e-3)},
            phases={"iteration": {"count": 4, "mean_wall_s": 1e-3, "total_wall_s": 4e-3}},
        )
        b = stats_doc(
            {"spmv": wall_entry(1e-3)},
            phases={"iteration": {"count": 4, "mean_wall_s": 8e-3, "total_wall_s": 3.2e-2}},
        )
        diff = profile_diff(a, b)
        (phase,) = [p for p in diff["phases"] if p["regressed"]]
        assert phase["name"] == "iteration"
        text = summarize_diff(diff)
        assert "regressed phases:" in text
        assert "iteration" in text


class TestIO:
    def test_load_stats_rejects_foreign_documents(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text(json.dumps({"schema": "repro-rollup/1"}))
        with pytest.raises(ValueError, match="not a repro-stats"):
            load_stats(str(p))

    def test_load_stats_roundtrip(self, tmp_path):
        doc = stats_doc({"spmv": wall_entry(1e-3)})
        p = tmp_path / "a.json"
        p.write_text(json.dumps(doc))
        assert load_stats(str(p))["wall_tasks"] == doc["wall_tasks"]

    def test_summary_renders_verdict_and_markers(self):
        a = stats_doc({"spmv": wall_entry(1e-3)})
        b = stats_doc({"spmv": wall_entry(5e-3)})
        text = summarize_diff(profile_diff(a, b))
        assert "verdict: regression (top: spmv)" in text
        assert "REGRESSED" in text


class TestStallAttribution:
    """Acceptance: REPRO_FAULTS-injected stalls show up as the top
    wall-clock regression between a clean and a faulted run."""

    def test_injected_stall_ranks_as_top_regression(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        obs_clean, _ = run_traced("fig8-cg", backend="serial", size=48, pieces=4, iterations=3)
        baseline = stats_report(obs_clean)

        # Stall the 6th axpy launch for 80ms — enormous against the
        # micro-task means of this small case.
        monkeypatch.setenv("REPRO_FAULTS", "stall:axpy:5:80")
        obs_stalled, _ = run_traced("fig8-cg", backend="serial", size=48, pieces=4, iterations=3)
        candidate = stats_report(obs_stalled)

        diff = profile_diff(baseline, candidate)
        assert diff["verdict"] == "regression"
        assert diff["top_regression"] is not None
        assert "axpy" in diff["top_regression"]
        top = diff["tasks"][0]
        assert "axpy" in top["name"]
        assert top["clock"] == "wall"
        assert top["delta_mean_s"] > 0.0
        # The flipped diff reads as an improvement, not a regression.
        flipped = profile_diff(candidate, baseline)
        assert flipped["verdict"] in ("improvement", "neutral")
        assert flipped["top_regression"] is None
