"""Flight recorder: ring bounds, bundle validity, and the post-mortem
paths that dump it (ThreadedExecutor deadlock, unrecoverable chaos)."""

import json
import re
import threading

import numpy as np
import pytest

from repro.faults import FaultPlan
from repro.faults.chaos import run_chaos
from repro.obs import Observability
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    FlightRecorder,
    validate_flight_bundle,
)
from repro.runtime import (
    ExecutorError,
    IndexSpace,
    Privilege,
    Runtime,
    Subset,
    TaskLauncher,
)


class TestRing:
    def test_capacity_bounds_retention(self):
        rec = FlightRecorder(capacity=16)
        for i in range(100):
            rec.record("submit", task_id=i, name=f"t{i}")
        assert len(rec) == 16
        assert rec.n_events == 100
        events = rec.events()
        # Oldest-first tail of the most recent events.
        assert [e["task_id"] for e in events] == list(range(84, 100))
        assert rec.nbytes() <= 96 * 16 + 64

    def test_events_are_time_ordered(self):
        rec = FlightRecorder(capacity=8)
        for i in range(20):
            rec.record("x", task_id=i)
        times = [e["t_s"] for e in rec.events()]
        assert times == sorted(times)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            FlightRecorder(capacity=0)

    def test_caller_supplied_clock_is_used(self):
        rec = FlightRecorder(capacity=4)
        rec.record("a", now=rec._wall0 + 1.5)
        assert rec.events()[0]["t_s"] == pytest.approx(1.5)


class TestBundle:
    def test_bundle_validates_and_embeds_metrics(self):
        obs = Observability()
        for i in range(5):
            obs.task_submitted(i, "spmv", 1, 1)
            obs.task_started(i, "w0")
            obs.task_finished(i)
        bundle = obs.flight_bundle("test-reason")
        assert bundle is not None
        assert validate_flight_bundle(bundle) == []
        assert bundle["schema"] == FLIGHT_SCHEMA
        assert bundle["reason"] == "test-reason"
        kinds = [e["kind"] for e in bundle["events"]]
        assert kinds.count("submit") == 5
        assert kinds.count("finish") == 5
        # flight_bundle flushes the probe accumulators first, so the
        # snapshot inside the bundle is current.
        assert bundle["metrics"]["counters"]["executor.tasks_submitted"] == 5.0

    def test_validator_catches_tampering(self):
        obs = Observability()
        obs.task_submitted(1, "t", 0, 0)
        bundle = obs.flight_bundle("r")
        assert validate_flight_bundle(bundle) == []
        bad = dict(bundle)
        bad["n_events_retained"] = 999
        assert any("n_events_retained" in p for p in validate_flight_bundle(bad))
        bad = dict(bundle)
        bad["schema"] = "nope/0"
        assert any("schema" in p for p in validate_flight_bundle(bad))
        bad = dict(bundle)
        bad["reason"] = ""
        assert any("reason" in p for p in validate_flight_bundle(bad))

    def test_disabled_bundle_returns_none(self):
        obs = Observability(enabled=False)
        assert obs.flight_bundle("r") is None
        obs = Observability(flight=False)
        assert obs.flight_bundle("r") is None

    def test_bundle_without_tracer_or_metrics_degrades(self):
        rec = FlightRecorder(capacity=4)
        rec.record("submit", 1, "t")
        bundle = rec.bundle("reason-only")
        assert validate_flight_bundle(bundle) == []
        assert bundle["metrics"] is None
        assert bundle["critical_path"] is None

    def test_bundle_analysis_failure_degrades_not_raises(self):
        """A post-mortem must never mask the original fault: broken
        metrics/tracer objects degrade those sections to None."""

        class BrokenMetrics:
            enabled = True

            def snapshot(self):
                raise RuntimeError("boom")

        class BrokenTracer:
            @property
            def task_spans(self):
                raise RuntimeError("boom")

        rec = FlightRecorder(capacity=4)
        rec.record("x")
        bundle = rec.bundle("r", metrics=BrokenMetrics(), tracer=BrokenTracer())
        assert bundle["metrics"] is None
        assert bundle["critical_path"] is None
        assert validate_flight_bundle(bundle) == []

    def test_validator_edge_branches(self):
        ok = FlightRecorder(capacity=4)
        ok.record("a")
        base = ok.bundle("r")
        bad = dict(base)
        bad["events"] = "not-a-list"
        assert any("not a list" in p for p in validate_flight_bundle(bad))
        bad = dict(base)
        bad["events"] = [{"kind": "a", "t_s": 2.0}, {"kind": "b", "t_s": 1.0}]
        bad["n_events_retained"] = 2
        assert any("time-ordered" in p for p in validate_flight_bundle(bad))
        bad = dict(base)
        bad["events"] = [{"no": "fields"}]
        bad["n_events_retained"] = 1
        assert any("malformed" in p for p in validate_flight_bundle(bad))
        bad = dict(base)
        bad["capacity"] = 0
        assert any("exceeds capacity" in p for p in validate_flight_bundle(bad))
        bad = dict(base)
        bad["n_events_total"] = 0
        assert any("below retained" in p for p in validate_flight_bundle(bad))


class TestDeadlockDump:
    def test_deadlock_dump_carries_valid_flight_bundle(self, tmp_path):
        """Drive the ThreadedExecutor into a genuine dependence cycle
        with observability on; the repro-deadlock/1 dump it writes must
        embed a valid repro-flight/1 bundle whose ring shows the tasks
        leading up to the hang."""
        rt = Runtime(backend="threads", jobs=2, faults=False, observability=True)
        try:
            region = rt.create_region(IndexSpace.linear(8), {"v": np.float64})
            rt.allocate(region, "v", fill=1.0)
            cell = {}
            launched = threading.Event()

            def body_a(ctx):
                launched.wait(timeout=10)
                return cell["fb"].get()  # B depends on A: cycle

            tl_a = TaskLauncher("a", body_a)
            tl_a.add_requirement(
                region, ["v"], Subset.full(region.ispace), Privilege.READ_WRITE
            )
            rt.execute(tl_a)
            tl_b = TaskLauncher("b", lambda ctx: float(ctx[0].read().sum()))
            tl_b.add_requirement(
                region, ["v"], Subset.full(region.ispace), Privilege.READ_WRITE
            )
            cell["fb"] = rt.execute(tl_b)
            launched.set()
            with pytest.raises(ExecutorError) as excinfo:
                rt.sync()
        finally:
            rt.executor.shutdown()
        match = re.search(r"trace written to (\S+\.json)", str(excinfo.value))
        assert match, f"no dump path in: {excinfo.value}"
        with open(match.group(1), "r", encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["schema"] == "repro-deadlock/1"
        assert "flight" in payload, "deadlock dump lost the flight bundle"
        flight = payload["flight"]
        assert validate_flight_bundle(flight) == []
        assert flight["reason"].startswith("deadlock:")
        submitted = [e["name"] for e in flight["events"] if e["kind"] == "submit"]
        assert "a" in submitted and "b" in submitted


class TestChaosFlight:
    def test_unrecoverable_chaos_report_carries_valid_flight(self):
        """A no-retry crash on the very first setup copy is
        unrecoverable by construction; the chaos report must ship a
        valid flight bundle explaining the failure."""
        plan = FaultPlan.parse("crash:copy:0", retry_crashes=False)
        report = run_chaos("cg", seed=1, plan=plan)
        assert not report.ok
        assert report.setup_fault is not None
        assert report.flight is not None
        assert validate_flight_bundle(report.flight) == []
        assert report.flight["reason"].startswith("unrecoverable:")
        # The JSON artifact keeps it too (repro chaos --json).
        payload = json.loads(report.to_json())
        assert validate_flight_bundle(payload["flight"]) == []
