"""Rollup aggregator: windowing, labels, retention, JSONL round-trip."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.rollup import (
    LABEL_KEYS,
    ROLLUP_SCHEMA,
    RollupAggregator,
    iter_jsonl,
)


class TestWindowing:
    def test_observations_bucket_by_timestamp(self):
        agg = RollupAggregator(window_s=1.0, max_windows=8)
        agg.observe(0.2, "latency", "task.spmv", 0.01)
        agg.observe(0.9, "latency", "task.spmv", 0.03)
        agg.observe(1.1, "latency", "task.spmv", 0.05)
        assert agg.n_windows() == 2
        assert agg.window_indices() == [0, 1]
        (w0,) = [c for c in agg.cells(0)]
        assert w0.count == 2.0
        assert w0.total == pytest.approx(0.04)
        (w1,) = [c for c in agg.cells(1)]
        assert w1.count == 1.0

    def test_distinct_names_and_kinds_get_distinct_cells(self):
        agg = RollupAggregator(window_s=10.0)
        agg.observe(0.0, "latency", "task.spmv", 1.0)
        agg.observe(0.0, "latency", "task.axpy", 2.0)
        agg.observe(0.0, "counter", "task.spmv", 3.0)
        assert len(agg.cells(0)) == 3


class TestRetention:
    def test_oldest_windows_evicted_beyond_max(self):
        agg = RollupAggregator(window_s=1.0, max_windows=4)
        for i in range(10):
            agg.observe(float(i) + 0.5, "latency", "x", 1.0)
        assert agg.n_windows() == 4
        assert agg.window_indices() == [6, 7, 8, 9]
        assert agg.evicted_windows == 6

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
            min_size=1,
            max_size=300,
        ),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=40, deadline=None)
    def test_retention_invariant_holds_for_any_stream(self, times, max_windows):
        agg = RollupAggregator(window_s=1.0, max_windows=max_windows)
        for t in times:
            agg.observe(t, "latency", "x", t)
        assert agg.n_windows() <= max_windows
        # Retained + evicted covers every distinct window ever touched.
        # (Out-of-order arrivals can re-create an evicted window, so the
        # sum may exceed the distinct count but never undershoots it.)
        touched = len({int(t // 1.0) for t in times})
        assert agg.n_windows() + agg.evicted_windows >= touched

    def test_memory_stays_bounded_over_long_stream(self):
        agg = RollupAggregator(window_s=1.0, max_windows=8)
        sizes = []
        for i in range(50_000):
            agg.observe(i * 0.01, "latency", "task.spmv", float(i % 97))
            if i in (9_999, 49_999):
                sizes.append(agg.nbytes())
        assert sizes[-1] <= 2 * sizes[0] + 4096


class TestLabels:
    def test_records_carry_full_label_schema(self):
        agg = RollupAggregator(window_s=1.0)
        agg.observe(
            0.0,
            "latency",
            "task.spmv",
            0.5,
            labels={"solver": "cg", "backend": "threads", "run_id": "r1"},
        )
        (rec,) = agg.records()
        assert rec["schema"] == ROLLUP_SCHEMA
        assert set(rec["labels"]) == set(LABEL_KEYS)
        assert rec["labels"]["solver"] == "cg"
        assert rec["labels"]["backend"] == "threads"
        assert rec["labels"]["tenant"] == ""  # absent labels serialize as ""

    def test_label_sets_partition_cells(self):
        agg = RollupAggregator(window_s=1.0)
        agg.observe(0.0, "latency", "x", 1.0, labels={"solver": "cg"})
        agg.observe(0.0, "latency", "x", 9.0, labels={"solver": "gmres"})
        recs = sorted(agg.records(), key=lambda r: r["labels"]["solver"])
        assert len(recs) == 2
        assert recs[0]["mean"] == 1.0
        assert recs[1]["mean"] == 9.0

    def test_unknown_label_keys_are_dropped_not_smuggled(self):
        agg = RollupAggregator(window_s=1.0)
        agg.observe(0.0, "latency", "x", 1.0, labels={"solver": "cg", "hostname": "n1"})
        (rec,) = agg.records()
        assert "hostname" not in rec["labels"]


class TestJsonl:
    def test_roundtrip_through_jsonl(self):
        agg = RollupAggregator(window_s=0.5)
        for i in range(100):
            agg.observe(i * 0.01, "latency", "task.spmv", i * 1e-3, labels={"solver": "cg"})
        agg.observe(0.0, "counter", "executor.tasks", 42.0)
        buf = io.StringIO()
        n = agg.write_jsonl(buf)
        records = iter_jsonl(buf.getvalue().splitlines())
        assert len(records) == n == len(agg.records())
        spmv = [r for r in records if r["name"] == "task.spmv"]
        assert sum(r["count"] for r in spmv) == 100
        for rec in records:
            assert rec["schema"] == ROLLUP_SCHEMA
            assert {"p50", "p95", "p99", "mean", "min", "max"} <= set(rec)
            assert rec["window_s"] == 0.5

    def test_iter_jsonl_rejects_foreign_schema(self):
        with pytest.raises(ValueError, match="repro-rollup/1"):
            iter_jsonl(['{"schema": "something-else/9"}'])

    def test_iter_jsonl_skips_blank_lines(self):
        agg = RollupAggregator(window_s=1.0)
        agg.observe(0.0, "latency", "x", 1.0)
        buf = io.StringIO()
        agg.write_jsonl(buf)
        assert len(iter_jsonl(["", *buf.getvalue().splitlines(), "  "])) == 1


class TestMerge:
    def test_per_worker_rollups_combine(self):
        a = RollupAggregator(window_s=1.0)
        b = RollupAggregator(window_s=1.0)
        for i in range(50):
            a.observe(0.1, "latency", "x", float(i))
            b.observe(0.1, "latency", "x", float(i + 50))
        a.merge(b)
        (rec,) = a.records()
        assert rec["count"] == 100
        assert rec["mean"] == pytest.approx(49.5)

    def test_merge_rejects_window_mismatch(self):
        a = RollupAggregator(window_s=1.0)
        b = RollupAggregator(window_s=2.0)
        with pytest.raises(ValueError, match="window mismatch"):
            a.merge(b)

    def test_merge_respects_retention(self):
        a = RollupAggregator(window_s=1.0, max_windows=2)
        b = RollupAggregator(window_s=1.0, max_windows=16)
        for i in range(8):
            b.observe(float(i) + 0.5, "latency", "x", 1.0)
        a.merge(b)
        assert a.n_windows() <= 2
        assert a.evicted_windows > 0


class TestValidation:
    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError, match="window_s"):
            RollupAggregator(window_s=0.0)
        with pytest.raises(ValueError, match="max_windows"):
            RollupAggregator(max_windows=0)

    def test_empty_aggregator_views(self):
        agg = RollupAggregator()
        assert agg.records() == []
        assert agg.cells(0) == []
        assert agg.window_indices() == []
        assert agg.nbytes() >= 0
