"""Metrics registry: instruments, snapshots, and the no-op default."""

import threading

from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
)


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_gauge_tracks_value_max_and_samples(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3.0)
        g.set(7.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.max_value == 7.0
        assert g.n_samples == 3

    def test_gauge_max_of_negative_samples(self):
        g = MetricsRegistry().gauge("neg")
        g.set(-5.0)
        g.set(-9.0)
        assert g.max_value == -5.0  # first sample seeds the max

    def test_histogram_summary(self):
        h = MetricsRegistry().histogram("lat")
        for v in (4.0, 1.0, 7.0):
            h.observe(v)
        assert h.count == 3
        assert h.min == 1.0
        assert h.max == 7.0
        assert h.mean == 4.0
        assert h.summary() == {
            "count": 3.0,
            "total": 12.0,
            "mean": 4.0,
            "min": 1.0,
            "max": 7.0,
            "p50": 4.0,
            "p95": 7.0,
            "p99": 7.0,
        }
        assert h.quantile(0.5) == 4.0

    def test_empty_histogram_mean_is_zero(self):
        assert MetricsRegistry().histogram("e").mean == 0.0

    def test_series_orders_and_counts(self):
        s = MetricsRegistry().series("residual")
        s.append(1.0)
        s.append(0.5)
        assert s.values == [1.0, 0.5]
        assert len(s) == 2


class TestRegistry:
    def test_create_on_first_use_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("a") is reg.gauge("a")
        assert reg.histogram("a") is reg.histogram("a")
        assert reg.series("a") is reg.series("a")
        assert reg.enabled is True

    def test_snapshot_shape_and_sorting(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc(2.0)
        reg.gauge("g").set(4.0)
        reg.histogram("h").observe(1.0)
        reg.series("s").append(0.25)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a", "b"]
        assert snap["counters"] == {"a": 2.0, "b": 1.0}
        assert snap["gauges"]["g"] == {"value": 4.0, "max": 4.0, "samples": 1}
        assert snap["histograms"]["h"]["count"] == 1.0
        assert snap["series"]["s"] == [0.25]

    def test_snapshot_series_is_a_copy(self):
        reg = MetricsRegistry()
        reg.series("s").append(1.0)
        snap = reg.snapshot()
        snap["series"]["s"].append(99.0)
        assert reg.series("s").values == [1.0]

    def test_concurrent_increments_do_not_lose_updates(self):
        reg = MetricsRegistry()
        c = reg.counter("hot")

        def worker():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000.0


class TestNullMetrics:
    def test_shared_noop_instruments(self):
        null = NullMetrics()
        assert null.enabled is False
        assert null.counter("a") is null.counter("b")
        null.counter("a").inc()
        null.gauge("g").set(9.0)
        null.histogram("h").observe(1.0)
        null.series("s").append(1.0)
        assert null.counter("a").value == 0.0
        assert null.gauge("g").n_samples == 0
        assert null.histogram("h").count == 0
        assert len(null.series("s")) == 0

    def test_snapshot_is_empty(self):
        assert NULL_METRICS.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "series": {},
        }
