"""Cross-format differential oracle: agreement on healthy formats,
detection + shrinking of injected corruption."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.problems.generators import tridiagonal_toeplitz
from repro.sparse.convert import ALL_FORMATS
from repro.sparse.csr import CSRMatrix
from repro.verify import (
    ORACLE_FORMATS,
    build_format,
    check_copartition,
    format_reproducer,
    histories_agree,
    matfree_from_scipy,
    run_oracle,
    seeded_problem,
    shrink_case,
)


class TestHistoriesAgree:
    def test_identical_histories_agree(self):
        h = [1.0, 0.1, 1e-4, 1e-9]
        ok, _ = histories_agree(h, h, tolerance=1e-8)
        assert ok

    def test_divergent_histories_flagged(self):
        ok, detail = histories_agree([1.0, 0.5, 0.25], [1.0, 0.5, 0.05],
                                     tolerance=1e-8)
        assert not ok
        assert "diverge" in detail

    def test_iteration_count_gap_flagged(self):
        ok, detail = histories_agree([1.0] * 10, [1.0] * 5, tolerance=1e-8)
        assert not ok
        assert "iteration counts" in detail

    def test_one_iteration_slack_allowed(self):
        ok, _ = histories_agree([1.0, 0.5, 1e-9], [1.0, 0.5], tolerance=1e-8)
        assert ok

    def test_endgame_noise_ignored(self):
        # Below 100x tolerance both runs are converged; roundoff-scale
        # disagreement there is not a format divergence.
        ok, _ = histories_agree([1.0, 0.5, 3e-7], [1.0, 0.5, 5e-7],
                                tolerance=1e-8)
        assert ok

    def test_nan_mismatch_flagged(self):
        ok, detail = histories_agree([1.0, float("nan")], [1.0, 0.5],
                                     tolerance=1e-8)
        assert not ok


class TestSeededProblems:
    def test_deterministic(self):
        a = seeded_problem(5, size=16)
        b = seeded_problem(5, size=16)
        assert a.name == b.name
        assert np.array_equal(a.matrix.toarray(), b.matrix.toarray())
        assert np.array_equal(a.rhs, b.rhs)

    def test_families_rotate(self):
        names = {seeded_problem(s, size=16).name.split("(")[0] for s in range(3)}
        assert len(names) == 3

    def test_symmetry_flags_honest(self):
        for s in range(3):
            p = seeded_problem(s, size=16)
            dense = p.matrix.toarray()
            assert p.symmetric == bool(np.allclose(dense, dense.T))


class TestFormatBuilders:
    @pytest.mark.parametrize("fmt", ORACLE_FORMATS)
    def test_builder_preserves_semantics(self, fmt):
        A = seeded_problem(1, size=8).matrix
        op = build_format(fmt, A)
        np.testing.assert_allclose(op.to_dense(), A.toarray(), atol=1e-12)

    def test_matfree_dependence_matches_pattern(self):
        A = tridiagonal_toeplitz(12)
        op = matfree_from_scipy(A)
        # Ghost regions derived from the dependence relation must match
        # the stored stencil: row i reads cols {i-1, i, i+1}.
        cols = op.col_relation.image_indices(np.array([5]))
        assert sorted(np.unique(cols)) == [4, 5, 6]

    def test_unknown_format_rejected(self):
        with pytest.raises(KeyError, match="unknown format"):
            build_format("nope", tridiagonal_toeplitz(4))


class TestOracleAgreement:
    def test_small_grid_all_agree(self):
        report = run_oracle(
            formats=["csr", "coo", "dia", "matfree"],
            solvers=["cg", "gmres", "tfqmr"],
            seeds=[0],
            piece_counts=[1, 2],
            size=16,
        )
        assert report.cases, "oracle produced no cases"
        assert report.ok, report.summary()

    def test_every_format_and_solver_covered_across_seeds(self):
        """Acceptance criterion: every registered format x solver
        combination runs on >= 3 seeded problems with per-combination
        agreement reported."""
        report = run_oracle(seeds=[0, 1, 2], piece_counts=[2], size=16,
                            check_copartitions=False)
        assert report.ok, report.summary()
        covered = {(c.fmt, c.solver) for c in report.cases}
        from repro.core.solvers import SOLVER_REGISTRY
        from repro.verify.oracle import (
            ADJOINT_SOLVERS,
            PRECONDITIONED_SOLVERS,
        )
        for fmt in ORACLE_FORMATS:
            for solver in SOLVER_REGISTRY:
                if fmt == "matfree" and solver in (
                    ADJOINT_SOLVERS | PRECONDITIONED_SOLVERS
                ):
                    continue
                assert (fmt, solver) in covered, (fmt, solver)
        # Each non-reference case carries an agreement verdict.
        for case in report.cases:
            assert case.detail

    def test_race_checked_run_is_clean(self):
        report = run_oracle(
            formats=["csr", "ell"],
            solvers=["cg"],
            seeds=[0],
            piece_counts=[2],
            size=12,
            check_races=True,
            check_copartitions=False,
        )
        assert report.ok, report.summary()

    def test_summary_counts(self):
        report = run_oracle(formats=["csr", "coo"], solvers=["cg"],
                            seeds=[0], piece_counts=[1], size=12,
                            check_copartitions=False)
        text = report.summary(verbose=True)
        assert f"{len(report.cases)} cases" in text
        assert "0 failure(s)" in text


def _corrupting_builder(target_fmt):
    """A format builder that deterministically perturbs one stored value
    of ``target_fmt`` — the class of bug the oracle exists to catch."""

    def build(fmt, A):
        if fmt != target_fmt:
            return build_format(fmt, A)
        B = A.tocsr().copy()
        B.data = B.data.copy()
        B.data[B.nnz // 2] *= 1.0 + 1e-3
        return build_format(fmt, B)

    return build


class TestOracleCatchesCorruption:
    def test_corrupt_format_detected(self):
        report = run_oracle(
            formats=["csr", "coo"],
            solvers=["cg"],
            seeds=[0],
            piece_counts=[1],
            size=16,
            check_copartitions=False,
            format_builder=_corrupting_builder("coo"),
        )
        assert not report.ok
        assert any(c.fmt == "coo" and not c.ok for c in report.cases)

    def test_failing_case_shrinks_to_minimal_reproducer(self, capsys):
        """Acceptance criterion: a seeded failing case shrinks and the
        minimal reproducer is printed in the test output."""
        builder = _corrupting_builder("coo")

        def fails(A, b, n_pieces):
            report = run_oracle(
                formats=["csr", "coo"],
                solvers=["cg"],
                piece_counts=[n_pieces],
                check_copartitions=False,
                format_builder=builder,
                problems=[_as_problem(A, b)],
            )
            return not report.ok

        prob = seeded_problem(0, size=16)
        result = shrink_case(prob.matrix, prob.rhs, 2, fails)
        assert result.size < 16
        assert result.n_pieces == 1
        assert fails(result.matrix, result.rhs, result.n_pieces)
        print("minimal reproducer after", result.steps, ":")
        print(result.reproducer())
        out = capsys.readouterr().out
        assert "sp.csr_matrix" in out and "n_pieces = 1" in out


def _as_problem(A, b):
    from repro.verify.oracle import Problem

    return Problem(name=f"shrunk(n={A.shape[0]})", matrix=A.tocsr(),
                   rhs=np.asarray(b), symmetric=True, seed=-1)


class TestShrinker:
    def test_requires_failing_input(self):
        with pytest.raises(ValueError, match="failing input"):
            shrink_case(tridiagonal_toeplitz(8), np.ones(8), 2,
                        lambda A, b, p: False)

    def test_shrinks_size_dependent_failure(self):
        # Failure persists down to n >= 3: shrinker must land exactly on 3.
        calls = []

        def fails(A, b, p):
            calls.append(A.shape[0])
            return A.shape[0] >= 3

        result = shrink_case(tridiagonal_toeplitz(64), np.ones(64), 4, fails)
        assert result.size == 3
        assert result.n_pieces == 1
        assert result.steps

    def test_erroring_candidates_skipped(self):
        def fails(A, b, p):
            if A.shape[0] < 6:
                raise RuntimeError("different bug")
            return True

        result = shrink_case(tridiagonal_toeplitz(24), np.ones(24), 2, fails)
        assert result.size == 6

    def test_reproducer_rebuilds_case(self):
        A = tridiagonal_toeplitz(4)
        b = np.arange(4.0)
        snippet = format_reproducer(A, b, 2)
        env = {}
        exec(snippet, env)
        assert np.array_equal(env["A"].toarray(), A.toarray())
        assert np.array_equal(env["b"], b)
        assert env["n_pieces"] == 2


class TestCopartitionProperties:
    @pytest.mark.parametrize("fmt,conv", ALL_FORMATS)
    @pytest.mark.parametrize("n_pieces", [1, 2, 5])
    def test_all_formats_pass_invariants(self, fmt, conv, n_pieces):
        A = seeded_problem(1, size=20).matrix
        op = conv(CSRMatrix.from_scipy(A))
        assert check_copartition(op, n_pieces, fmt) == []

    def test_matfree_passes_invariants(self):
        op = matfree_from_scipy(tridiagonal_toeplitz(20))
        assert check_copartition(op, 4, "matfree") == []

    def test_buggy_preimage_fast_path_reported(self):
        """The realistic bug class: a user-defined relation whose
        partial-subset preimage fast path drops entries (full-space
        queries are fine).  Projections built from per-piece preimages
        then miss stored entries, which the kernel-covering check
        reports."""
        from repro.runtime.deppart import Relation

        op = build_format("csr", tridiagonal_toeplitz(12))
        base = op.row_relation

        class BuggyPreimage(Relation):
            def __init__(self):
                super().__init__(base.source, base.target)

            def image_indices(self, src):
                return base.image_indices(src)

            def preimage_indices(self, dst):
                out = base.preimage_indices(dst)
                if np.asarray(dst).size < base.target.volume:
                    return out[:-1]  # drop one entry on partial queries
                return out

            def pairs(self):
                return base.pairs()

        op._row_rel = BuggyPreimage()
        issues = check_copartition(op, 3, "buggy-csr")
        assert issues
        assert any("misses" in msg and "stored entries" in msg for msg in issues)
