"""`repro verify` CLI subcommand."""


from repro.cli import main
from repro.sparse.plugin import format_names


class TestVerifyCommand:
    def test_smoke_passes_on_seed_problems(self, capsys):
        rc = main([
            "verify",
            "--formats", "csr", "coo", "matfree",
            "--solvers", "cg", "gmres",
            "--seeds", "0",
            "--pieces", "1", "2",
            "--size", "12",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 failure(s)" in out

    def test_all_keywords_expand(self, capsys):
        rc = main([
            "verify",
            "--formats", "all",
            "--solvers", "cg",
            "--seeds", "0",
            "--pieces", "2",
            "--size", "12",
            "--no-copartition",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        # Every registered format ran: 1 reference + N-1 comparisons.
        assert f"{len(format_names())} cases" in out

    def test_verbose_lists_cases(self, capsys):
        rc = main([
            "verify",
            "--formats", "csr", "dia",
            "--solvers", "cg",
            "--seeds", "0",
            "--pieces", "1",
            "--size", "12",
            "--verbose",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "reference" in out
        assert "agree over" in out

    def test_races_flag_runs(self, capsys):
        rc = main([
            "verify",
            "--formats", "csr",
            "--solvers", "cg",
            "--seeds", "0",
            "--pieces", "2",
            "--size", "12",
            "--races",
            "--no-copartition",
        ])
        assert rc == 0

    def test_unknown_format_rejected(self, capsys):
        rc = main(["verify", "--formats", "nope", "--solvers", "cg"])
        assert rc == 2
        assert "unknown format" in capsys.readouterr().out

    def test_unknown_solver_rejected(self, capsys):
        rc = main(["verify", "--formats", "csr", "--solvers", "nope"])
        assert rc == 2
        assert "unknown solver" in capsys.readouterr().out

    def test_out_writes_report(self, tmp_path, capsys):
        path = tmp_path / "verify.txt"
        rc = main([
            "verify",
            "--formats", "csr", "coo",
            "--solvers", "cg",
            "--seeds", "0",
            "--pieces", "1",
            "--size", "12",
            "--no-copartition",
            "--out", str(path),
        ])
        assert rc == 0
        assert "0 failure(s)" in path.read_text()
