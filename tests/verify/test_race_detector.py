"""Happens-before race detector: ordered graphs pass, corrupted graphs
are reported with region/field/subset detail."""

import numpy as np
import pytest

from repro.api import make_planner
from repro.core.solvers import SOLVER_REGISTRY
from repro.problems.generators import tridiagonal_toeplitz
from repro.runtime import (
    IndexSpace,
    Partition,
    Privilege,
    ProcKind,
    Runtime,
    Subset,
    TaskLauncher,
)
from repro.verify import RaceError, attach_race_detector


def make_runtime():
    return Runtime()


def launch(rt, name, region, subset, privilege, redop="+", deps=()):
    tl = TaskLauncher(name, lambda ctx: None, proc_kind=ProcKind.GPU,
                      future_deps=list(deps))
    tl.add_requirement(region, ["v"], subset, privilege, redop=redop)
    return rt.execute(tl)


@pytest.fixture
def setup():
    rt = make_runtime()
    det = attach_race_detector(rt)
    region = rt.create_region(IndexSpace.linear(64), {"v": np.float64})
    rt.allocate(region, "v")
    part = Partition.equal(region.ispace, 4)
    return rt, det, region, part


class TestOrderedGraphsPass:
    def test_write_then_read_is_ordered(self, setup):
        rt, det, region, part = setup
        launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD)
        launch(rt, "r", region, part[0], Privilege.READ_ONLY)
        assert det.n_tasks == 2
        assert det.check() == []
        det.assert_race_free()

    def test_write_write_chain_ordered(self, setup):
        rt, det, region, part = setup
        for i in range(4):
            launch(rt, f"w{i}", region, part[0], Privilege.READ_WRITE)
        assert det.check() == []

    def test_disjoint_writers_do_not_conflict(self, setup):
        rt, det, region, part = setup
        launch(rt, "w0", region, part[0], Privilege.WRITE_DISCARD)
        launch(rt, "w1", region, part[1], Privilege.WRITE_DISCARD)
        # No edge between them, but no overlap either.
        assert det.check() == []

    def test_commuting_reductions_unordered_but_race_free(self, setup):
        rt, det, region, part = setup
        launch(rt, "init", region, part[0], Privilege.WRITE_DISCARD)
        launch(rt, "red_a", region, part[0], Privilege.REDUCE)
        launch(rt, "red_b", region, part[0], Privilege.REDUCE)
        # Same-operator reductions commute: no race even without mutual
        # ordering.
        assert det.check() == []

    def test_transitive_ordering_suffices(self, setup):
        rt, det, region, part = setup
        launch(rt, "w1", region, part[0], Privilege.WRITE_DISCARD)
        launch(rt, "rw", region, part[0], Privilege.READ_WRITE)
        launch(rt, "w2", region, part[0], Privilege.WRITE_DISCARD)
        # w1 → rw → w2: the w1/w2 conflict is ordered transitively.
        assert det.check() == []

    def test_fence_orders_otherwise_unrelated_tasks(self, setup):
        rt, det, region, part = setup
        launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD)
        rt.fence()
        launch(rt, "r", region, part[0], Privilege.READ_ONLY)
        [w] = det.task_ids("w")
        [r] = det.task_ids("r")
        # Remove the dependence edge: the fence alone still orders them.
        assert det.drop_edge(w, r)
        assert det.check() == []


class TestCorruptedGraphsReported:
    def test_dropped_raw_edge_reports_pair_with_detail(self, setup):
        """The acceptance-criterion fixture: drop one read-after-write
        edge and the detector names the conflicting task pair, region,
        field, and overlapping subset."""
        rt, det, region, part = setup
        launch(rt, "writer", region, part[0], Privilege.WRITE_DISCARD)
        launch(rt, "reader", region, part[0], Privilege.READ_ONLY)
        [w] = det.task_ids("writer")
        [r] = det.task_ids("reader")
        assert det.drop_edge(w, r)

        races = det.check()
        assert len(races) == 1
        race = races[0]
        assert race.kind == "read-after-write"
        assert {race.first.task_id, race.second.task_id} == {w, r}
        report = race.describe()
        assert "writer" in report and "reader" in report
        assert region.name in report and ".v" in report
        # Subset detail: part[0] of a 64-element space is [0, 15].
        assert "[0, 15]" in report
        with pytest.raises(RaceError, match="read-after-write"):
            det.assert_race_free()

    def test_dropped_waw_edge_reported(self, setup):
        rt, det, region, part = setup
        launch(rt, "first", region, part[1], Privilege.WRITE_DISCARD)
        launch(rt, "second", region, part[1], Privilege.WRITE_DISCARD)
        [a] = det.task_ids("first")
        [b] = det.task_ids("second")
        assert det.drop_edge(a, b)
        races = det.check()
        assert len(races) == 1
        assert races[0].kind == "write-after-write"

    def test_noncommuting_reductions_require_ordering(self, setup):
        rt, det, region, part = setup
        launch(rt, "sum", region, part[0], Privilege.REDUCE, redop="+")
        launch(rt, "max", region, part[0], Privilege.REDUCE, redop="max")
        [s] = det.task_ids("sum")
        [m] = det.task_ids("max")
        # The engine orders different-operator reductions; drop that edge
        # and the pair is a race.
        assert det.drop_edge(s, m)
        races = det.check()
        assert len(races) == 1
        assert "non-commuting" in races[0].kind
        assert "+" in races[0].kind and "max" in races[0].kind

    def test_partial_overlap_reported_exactly(self, setup):
        rt, det, region, part = setup
        lo = Subset.interval(region.ispace, 0, 23)
        hi = Subset.interval(region.ispace, 16, 39)
        launch(rt, "w_lo", region, lo, Privilege.WRITE_DISCARD)
        launch(rt, "w_hi", region, hi, Privilege.WRITE_DISCARD)
        [a] = det.task_ids("w_lo")
        [b] = det.task_ids("w_hi")
        assert det.drop_edge(a, b)
        races = det.check()
        assert len(races) == 1
        # The conflicting elements are exactly the intersection [16, 24).
        assert races[0].overlap == tuple(range(16, 24))


class TestDetectorOnRealWorkloads:
    @pytest.mark.parametrize("solver", ["cg", "bicgstab", "gmres", "tfqmr"])
    def test_solver_runs_are_race_free(self, solver):
        rt = make_runtime()
        det = attach_race_detector(rt)
        A = tridiagonal_toeplitz(24)
        b = np.ones(24)
        planner = make_planner(A, b, n_pieces=3, runtime=rt)
        result = SOLVER_REGISTRY[solver](planner).solve(
            tolerance=1e-8, max_iterations=100
        )
        assert result.converged
        assert det.n_tasks > 0
        assert det.n_edges > 0
        det.assert_race_free()

    def test_observer_sees_dependence_edges(self, setup):
        rt, det, region, part = setup
        launch(rt, "w", region, part[2], Privilege.WRITE_DISCARD)
        launch(rt, "r1", region, part[2], Privilege.READ_ONLY)
        launch(rt, "r2", region, part[2], Privilege.READ_ONLY)
        launch(rt, "w2", region, part[2], Privilege.WRITE_DISCARD)
        [w] = det.task_ids("w")
        [r1] = det.task_ids("r1")
        [r2] = det.task_ids("r2")
        [w2] = det.task_ids("w2")
        edges = set(det.edges())
        assert (w, r1) in edges and (w, r2) in edges
        # The later writer must order against *both* merged readers.
        assert (r1, w2) in edges and (r2, w2) in edges

    def test_future_dependences_are_edges(self, setup):
        rt, det, region, part = setup
        f = launch(rt, "producer", region, part[0], Privilege.WRITE_DISCARD)
        launch(rt, "consumer", region, part[1], Privilege.WRITE_DISCARD, deps=[f])
        [p] = det.task_ids("producer")
        [c] = det.task_ids("consumer")
        assert (p, c) in set(det.edges())
        assert det.check() == []


class TestAccessors:
    """Introspection surface used by fixtures and the static analyzer."""

    def test_task_ids_launch_order_and_filtering(self, setup):
        rt, det, region, part = setup
        launch(rt, "a", region, part[0], Privilege.WRITE_DISCARD)
        launch(rt, "b", region, part[1], Privilege.WRITE_DISCARD)
        launch(rt, "a", region, part[2], Privilege.WRITE_DISCARD)
        all_ids = det.task_ids()
        assert len(all_ids) == 3
        assert all_ids == sorted(all_ids)  # launch order
        assert det.task_ids("a") == [all_ids[0], all_ids[2]]
        assert det.task_ids("b") == [all_ids[1]]
        assert det.task_ids("never-launched") == []

    def test_task_name_round_trips_and_raises_on_unknown(self, setup):
        rt, det, region, part = setup
        launch(rt, "only", region, part[0], Privilege.WRITE_DISCARD)
        [tid] = det.task_ids("only")
        assert det.task_name(tid) == "only"
        with pytest.raises(KeyError):
            det.task_name(tid + 12345)

    def test_edges_matches_n_edges_and_points_forward(self, setup):
        rt, det, region, part = setup
        launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD)
        launch(rt, "r", region, part[0], Privilege.READ_ONLY)
        launch(rt, "w2", region, part[0], Privilege.WRITE_DISCARD)
        edges = det.edges()
        assert len(edges) == det.n_edges
        assert len(edges) == len(set(edges))  # no duplicates
        assert all(src != dst for src, dst in edges)
        # Engine dependences always point from earlier to later launches.
        order = {tid: i for i, tid in enumerate(det.task_ids())}
        assert all(order[src] < order[dst] for src, dst in edges)

    def test_drop_edge_false_when_absent(self, setup):
        rt, det, region, part = setup
        launch(rt, "w0", region, part[0], Privilege.WRITE_DISCARD)
        launch(rt, "w1", region, part[1], Privilege.WRITE_DISCARD)
        [a] = det.task_ids("w0")
        [b] = det.task_ids("w1")
        # Disjoint subsets: the engine never created an edge.
        assert not det.drop_edge(a, b)
        assert not det.drop_edge(a, 999999)  # unknown destination
        assert det.n_edges == 0

    def test_drop_edge_true_then_false_on_repeat(self, setup):
        rt, det, region, part = setup
        launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD)
        launch(rt, "r", region, part[0], Privilege.READ_ONLY)
        [w] = det.task_ids("w")
        [r] = det.task_ids("r")
        before = det.n_edges
        assert det.drop_edge(w, r)
        assert det.n_edges == before - 1
        assert (w, r) not in set(det.edges())
        assert not det.drop_edge(w, r)  # already gone

    def test_drop_edge_is_directional(self, setup):
        rt, det, region, part = setup
        launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD)
        launch(rt, "r", region, part[0], Privilege.READ_ONLY)
        [w] = det.task_ids("w")
        [r] = det.task_ids("r")
        # The recorded edge is w → r; the reverse does not exist.
        assert not det.drop_edge(r, w)
        assert det.drop_edge(w, r)
