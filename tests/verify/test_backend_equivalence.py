"""Serial vs. threads backends must agree bitwise, for every format.

The deferred executor changes *when* task bodies run, never *what* they
compute: engine dependence edges plus launch-order serialization of
commuting reductions pin down one arithmetic order.  These tests reuse
the differential oracle's problem/format builders and demand exact
(bitwise) equality — a stronger bar than the oracle's cross-format
tolerance, because here the operator and partitioning are identical and
only the backend differs.
"""

import numpy as np
import pytest

from repro.api import make_planner
from repro.core.planner import SOL
from repro.core.solvers import SOLVER_REGISTRY
from repro.runtime import Runtime
from repro.verify.oracle import ORACLE_FORMATS, build_format, seeded_problem


def _solve(op, b, solver, backend, n_pieces):
    runtime = Runtime(backend=backend, jobs=4)
    planner = make_planner(op, b, n_pieces=n_pieces, runtime=runtime)
    result = SOLVER_REGISTRY[solver](planner).solve(
        tolerance=1e-10, max_iterations=150
    )
    x = planner.get_array(SOL)
    runtime.executor.shutdown()
    return result, x


@pytest.mark.parametrize("fmt", ORACLE_FORMATS)
def test_backends_bitwise_identical_per_format(fmt):
    prob = seeded_problem(0, size=24)  # SPD; CG applies to every format
    results = {}
    for backend in ("serial", "threads"):
        op = build_format(fmt, prob.matrix)
        results[backend] = _solve(op, prob.rhs, "cg", backend, n_pieces=3)
    res_s, x_s = results["serial"]
    res_t, x_t = results["threads"]
    assert res_s.measure_history == res_t.measure_history  # bitwise
    assert res_s.iterations == res_t.iterations
    assert np.array_equal(x_s, x_t)


@pytest.mark.parametrize("solver", ["bicgstab", "gmres"])
def test_backends_bitwise_identical_nonsymmetric(solver):
    prob = seeded_problem(2, size=25)  # convection-diffusion, nonsymmetric
    results = {}
    for backend in ("serial", "threads"):
        op = build_format("csr", prob.matrix)
        results[backend] = _solve(op, prob.rhs, solver, backend, n_pieces=3)
    res_s, x_s = results["serial"]
    res_t, x_t = results["threads"]
    assert res_s.measure_history == res_t.measure_history
    assert np.array_equal(x_s, x_t)


def test_threads_backend_passes_race_detector():
    from repro.verify.race import attach_race_detector

    prob = seeded_problem(0, size=24)
    runtime = Runtime(backend="threads", jobs=4)
    detector = attach_race_detector(runtime)
    planner = make_planner(
        build_format("csr", prob.matrix), prob.rhs, n_pieces=4, runtime=runtime
    )
    SOLVER_REGISTRY["cg"](planner).solve(tolerance=1e-10, max_iterations=100)
    runtime.sync()
    assert detector.check() == []
    runtime.executor.shutdown()
