"""Verification tools under active fault injection: the differential
oracle still agrees across formats when faults are recovered, and the
race detector reports no spurious races for retried or rolled-back
tasks."""

import numpy as np
import pytest

from repro.api import make_planner
from repro.core.solvers import SOLVER_REGISTRY, solve_resilient
from repro.faults import FAULT_SEED_ENV, FAULTS_ENV, FaultPlan
from repro.problems.generators import tridiagonal_toeplitz
from repro.runtime import Runtime
from repro.verify import attach_race_detector
from repro.verify.oracle import run_oracle

RECOVERED_PLAN = "crash:dot_partial:6; stall:spmv_*:2:3"


class TestOracleUnderFaults:
    def test_formats_agree_with_recovered_faults(self, monkeypatch):
        # Crashes retried transparently + a short stall: every per-format
        # run sees the same injections at the same launch indices, so the
        # differential comparison must still agree bitwise-for-bitwise.
        monkeypatch.setenv(FAULTS_ENV, RECOVERED_PLAN)
        monkeypatch.setenv(FAULT_SEED_ENV, "3")
        report = run_oracle(
            formats=["csr", "coo", "dia"],
            solvers=["cg", "bicgstab"],
            seeds=[0],
            piece_counts=[3],
            check_races=True,
        )
        assert report.ok, report.summary(verbose=True)
        assert report.race_reports == []

    def test_oracle_matches_fault_free_baseline(self, monkeypatch):
        baseline = run_oracle(
            formats=["csr"], solvers=["cg"], seeds=[0], piece_counts=[3]
        )
        monkeypatch.setenv(FAULTS_ENV, RECOVERED_PLAN)
        faulted = run_oracle(
            formats=["csr"], solvers=["cg"], seeds=[0], piece_counts=[3]
        )
        assert baseline.ok and faulted.ok, faulted.summary(verbose=True)
        assert len(faulted.cases) == len(baseline.cases)
        for base, fault in zip(baseline.cases, faulted.cases):
            assert fault.iterations == base.iterations


class TestRaceDetectorUnderFaults:
    def _solve_with_detector(self, plan, solver="cg"):
        rt = Runtime(faults=plan)
        det = attach_race_detector(rt)
        n = 30
        A = tridiagonal_toeplitz(n)
        b = np.random.default_rng(0).random(n)
        planner = make_planner(A, b, n_pieces=3, runtime=rt)
        ksm = SOLVER_REGISTRY[solver](planner)
        result = solve_resilient(ksm, tolerance=1e-8, max_iterations=200)
        return rt, det, result

    def test_retried_crash_produces_no_spurious_race(self):
        plan = FaultPlan.parse("crash:dot_partial:9", retry_crashes=True)
        rt, det, result = self._solve_with_detector(plan)
        assert result.converged
        assert rt.fault_log.n_injected == 1
        det.assert_race_free()

    def test_rollback_replay_produces_no_spurious_race(self):
        plan = FaultPlan.parse("corrupt:axpy:14:nan", seed=2)
        rt, det, result = self._solve_with_detector(plan)
        assert result.converged
        assert result.n_rollbacks >= 1  # replayed writes really happened
        det.assert_race_free()

    def test_stall_reordering_produces_no_spurious_race(self):
        plan = FaultPlan.parse("stall:spmv_*:2:3; stall:axpy:6:2")
        rt, det, result = self._solve_with_detector(plan)
        assert result.converged
        assert rt.fault_log.n_injected == 2
        det.assert_race_free()

    def test_detector_still_sees_fault_tasks(self):
        plan = FaultPlan.parse("crash:dot_partial:9", retry_crashes=True)
        rt, det, result = self._solve_with_detector(plan)
        names = {det.task_name(t) for t in det.task_ids()}
        assert "dot_partial" in names  # injection did not hide the task
