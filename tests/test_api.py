"""The high-level entry points: make_planner and solve."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import make_planner, solve
from repro.core import CGSolver, SOL
from repro.problems import tridiagonal_toeplitz
from repro.runtime import Machine, ProcKind, lassen
from repro.sparse import CSRMatrix, DIAMatrix


@pytest.fixture
def system(rng):
    A = tridiagonal_toeplitz(48)
    return A, rng.normal(size=48)


class TestSolve:
    def test_default_solve(self, system):
        A, b = system
        x, result = solve(A, b, tolerance=1e-10)
        assert result.converged
        assert np.linalg.norm(A @ x - b) < 1e-8

    def test_unknown_solver_rejected(self, system):
        A, b = system
        with pytest.raises(KeyError, match="unknown solver"):
            solve(A, b, solver="fancy")

    def test_unknown_preconditioner_rejected(self, system):
        A, b = system
        with pytest.raises(KeyError):
            solve(A, b, solver="pcg", preconditioner="ilu-magic")

    def test_jacobi_string_shortcut(self, system):
        A, b = system
        x, result = solve(A, b, solver="pcg", preconditioner="jacobi", tolerance=1e-10)
        assert result.converged

    def test_solution_is_array_of_right_size(self, system):
        A, b = system
        x, _ = solve(A, b, max_iterations=5)
        assert x.shape == (48,)


class TestMakePlanner:
    def test_scipy_matrix_wrapped_as_csr(self, system):
        A, b = system
        planner = make_planner(A, b)
        assert planner.is_square()

    def test_kdr_matrix_used_directly(self, system, rng):
        A, b = system
        kdr = CSRMatrix.from_scipy(A)
        planner = make_planner(kdr, b)
        res = CGSolver(planner).solve(tolerance=1e-10)
        assert res.converged

    def test_kdr_shape_mismatch_rejected(self, system):
        A, b = system
        kdr = CSRMatrix.from_scipy(tridiagonal_toeplitz(32))
        with pytest.raises(ValueError):
            make_planner(kdr, b)

    def test_n_pieces_defaults_to_devices(self, system):
        A, b = system
        planner = make_planner(A, b, machine=lassen(2))
        assert planner.n_pieces == 8

    def test_n_pieces_capped_at_size(self):
        A = tridiagonal_toeplitz(4)
        planner = make_planner(A, np.ones(4), machine=lassen(2))
        assert planner.n_pieces <= 4

    def test_cpu_machine_supported(self, system):
        A, b = system
        machine = Machine(n_nodes=2, gpus_per_node=0)
        planner = make_planner(A, b, machine=machine)
        assert planner.proc_kind is ProcKind.CPU
        res = CGSolver(planner).solve(tolerance=1e-9)
        assert res.converged

    def test_explicit_proc_kind(self, system):
        A, b = system
        planner = make_planner(A, b, machine=lassen(1), proc_kind=ProcKind.CPU)
        assert planner.proc_kind is ProcKind.CPU

    def test_foreign_space_preconditioner_rebound(self, system):
        A, b = system
        # Built over its own spaces — make_planner must rebind it.
        pre = DIAMatrix((0.5 * np.ones(48))[None, :], np.array([0]))
        planner = make_planner(A, b, preconditioner=pre)
        assert planner.has_preconditioner()

    def test_wrong_size_preconditioner_rejected(self, system):
        A, b = system
        pre = DIAMatrix(np.ones(32)[None, :], np.array([0]))
        with pytest.raises(ValueError):
            make_planner(A, b, preconditioner=pre)

    def test_initial_guess_respected(self, system, rng):
        A, b = system
        x0 = rng.normal(size=48)
        planner = make_planner(A, b, x0=x0)
        np.testing.assert_allclose(planner.get_array(SOL), x0)

    def test_doctest_example(self):
        import repro.api

        import doctest

        results = doctest.testmod(repro.api)
        assert results.failed == 0
