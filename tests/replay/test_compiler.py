"""Plan compiler: canonical hashing, steadiness, window boundaries, the
checker gate (satellite 4), and the slot table."""

import numpy as np
import pytest

from repro.analyze.plan import attach_plan_capture
from repro.replay import (
    PlanCompileError,
    ReplaySession,
    compile_plan,
    compile_solver_program,
)
from repro.runtime import (
    IndexSpace,
    Machine,
    Partition,
    Privilege,
    ProcKind,
    Runtime,
    Subset,
    TaskLauncher,
)

from .conftest import make_solver, plan_for


def launch(rt, name, region, subset, privilege, kwargs=None):
    tl = TaskLauncher(name, lambda ctx: None, proc_kind=ProcKind.CPU,
                      kwargs=kwargs or {})
    tl.add_requirement(region, ["v"], subset, privilege)
    return rt.execute(tl)


def windowed_capture(build_window, n_windows=2, n=64, pieces=4):
    """Capture ``n_windows`` invocations of ``build_window(rt, region,
    part, i)`` and return (plan, boundaries)."""
    rt = Runtime(backend="capture")
    cap = attach_plan_capture(rt)
    region = rt.create_region(IndexSpace.linear(n), {"v": np.float64})
    rt.allocate(region, "v")
    part = Partition.equal(region.ispace, pieces)
    boundaries = [len(cap.plan.order)]
    for i in range(n_windows):
        build_window(rt, region, part, i)
        boundaries.append(len(cap.plan.order))
    return cap.plan, boundaries, rt


class TestCompile:
    def test_structure_hash_is_deterministic_across_runtimes(self):
        # Two independent captures: fresh runtimes, fresh uid counters.
        a = plan_for("cg", "csr")
        b = compile_solver_program(lambda rt: make_solver(rt, "cg", "csr"))
        assert a.structure_hash == b.structure_hash
        assert len(a) == len(b)
        assert [t.signature for t in a.tasks] == [t.signature for t in b.tasks]

    def test_distinct_programs_hash_differently(self):
        assert (
            plan_for("cg", "csr").structure_hash
            != plan_for("bicgstab", "csr").structure_hash
        )

    def test_slot_table_captures_kwarg_names(self):
        plan = plan_for("cg", "csr")
        slotted = [t for t in plan.tasks if t.slots]
        assert slotted, "CG's AXPY/XPAY launches carry scalar kwargs"
        assert all(s in (("alpha",), ("value",)) for t in slotted
                   for s in [t.slots])

    def test_needs_two_windows(self):
        def window(rt, region, part, i):
            launch(rt, "w", region, part[0], Privilege.READ_WRITE)

        plan, bounds, _ = windowed_capture(window, n_windows=1)
        with pytest.raises(PlanCompileError, match="at least two"):
            compile_plan(plan, bounds, n_devices=1)

    def test_unsteady_stream_is_refused(self):
        def window(rt, region, part, i):
            launch(rt, "w", region, part[0], Privilege.READ_WRITE)
            if i == 1:  # second window grows an extra task
                launch(rt, "extra", region, part[1], Privilege.READ_WRITE)

        plan, bounds, _ = windowed_capture(window)
        with pytest.raises(PlanCompileError, match="not steady"):
            compile_plan(plan, bounds, n_devices=1)

    def test_invalid_boundaries_are_refused(self):
        def window(rt, region, part, i):
            launch(rt, "w", region, part[0], Privilege.READ_WRITE)

        plan, bounds, _ = windowed_capture(window)
        with pytest.raises(PlanCompileError, match="boundaries"):
            compile_plan(plan, [0, 10 ** 6, 2 * 10 ** 6], n_devices=1)

    def test_warmup_below_two_is_refused(self):
        with pytest.raises(PlanCompileError, match="warmup"):
            compile_solver_program(
                lambda rt: make_solver(rt, "cg", "csr"), warmup=1
            )

    def test_dead_write_refuses_compilation_naming_the_task(self):
        # Within each window: a full-subset write that is entirely
        # overwritten before any read — the checker gate must refuse.
        def window(rt, region, part, i):
            full = Subset.interval(region.ispace, 0, region.ispace.volume - 1)
            launch(rt, "doomed_write", region, full, Privilege.WRITE_DISCARD)
            launch(rt, "overwrite", region, full, Privilege.WRITE_DISCARD)
            launch(rt, "read", region, full, Privilege.READ_ONLY)

        plan, bounds, _ = windowed_capture(window)
        with pytest.raises(PlanCompileError) as err:
            compile_plan(plan, bounds, n_devices=1)
        msg = str(err.value)
        assert "PLAN-DEAD-WRITE" in msg
        assert "doomed_write" in msg

    def test_clean_window_compiles_with_carried_deps(self):
        def window(rt, region, part, i):
            full = Subset.interval(region.ispace, 0, region.ispace.volume - 1)
            launch(rt, "produce", region, full, Privilege.READ_WRITE)
            launch(rt, "consume", region, full, Privilege.READ_ONLY)

        plan, bounds, rt = windowed_capture(window, n_windows=3)
        compiled = compile_plan(plan, bounds, n_devices=rt.machine.n_devices)
        assert len(compiled) == 2
        # consume depends on produce within the window; produce carries a
        # dependence on the previous window's tasks.
        assert compiled.tasks[1].intra_deps == (0,)
        assert compiled.tasks[0].carried_deps

    def test_empty_last_window_is_refused(self):
        def window(rt, region, part, i):
            launch(rt, "w", region, part[0], Privilege.READ_WRITE)

        plan, bounds, _ = windowed_capture(window, n_windows=1)
        end = bounds[-1]
        with pytest.raises(PlanCompileError, match="empty"):
            compile_plan(plan, [bounds[0], end, end], n_devices=1)

    def test_dependences_older_than_one_window_are_dropped(self):
        # A setup-time writer read by every window: by the last window
        # that write is >= 2 windows back and its edge must be dropped —
        # safe because the pre-replay drain covers it transitively.
        rt = Runtime(backend="capture")
        cap = attach_plan_capture(rt)
        region = rt.create_region(IndexSpace.linear(64), {"v": np.float64})
        rt.allocate(region, "v")
        full = Subset.interval(region.ispace, 0, region.ispace.volume - 1)
        launch(rt, "setup", region, full, Privilege.READ_WRITE)
        boundaries = [len(cap.plan.order)]
        for _ in range(3):
            launch(rt, "reader", region, full, Privilege.READ_ONLY)
            boundaries.append(len(cap.plan.order))
        compiled = compile_plan(
            cap.plan, boundaries, n_devices=rt.machine.n_devices
        )
        assert compiled.n_dropped_deps >= 1
        assert compiled.tasks[0].intra_deps == ()


class TestSessionGuards:
    def test_device_count_mismatch_refuses_attach(self):
        plan = plan_for("cg", "csr")
        rt = Runtime(machine=Machine(n_nodes=2))
        with pytest.raises(ValueError, match="device"):
            ReplaySession(plan, rt)

    def test_describe_mentions_hash_and_slots(self):
        plan = plan_for("cg", "csr")
        text = plan.describe()
        assert plan.structure_hash[:12] in text
        assert "alpha" in text

    def test_step_outside_a_window_is_a_no_op(self):
        plan = plan_for("cg", "csr")
        session = ReplaySession(plan, Runtime(backend="serial"))
        # No begin_window(): the session is not active and must decline
        # without touching the record.
        assert session.step(None) is None
        assert session.fallbacks == 0

    def _one_task_plan_and_live_runtime(self):
        def window(rt, region, part, i):
            launch(rt, "w", region, part[0], Privilege.READ_WRITE)

        plan, bounds, cap_rt = windowed_capture(window)
        compiled = compile_plan(plan, bounds,
                                n_devices=cap_rt.machine.n_devices)
        rt = Runtime(backend="serial", plan=compiled)
        region = rt.create_region(IndexSpace.linear(64), {"v": np.float64})
        rt.allocate(region, "v")
        part = Partition.equal(region.ispace, 4)
        return rt, region, part

    def test_overrun_window_falls_back(self):
        # One extra launch past the template's end: the window must fall
        # back, not replay the surplus task with stale edges.
        rt, region, part = self._one_task_plan_and_live_runtime()
        session = rt.replay_session
        rt.begin_iteration("t")
        launch(rt, "w", region, part[0], Privilege.READ_WRITE)
        launch(rt, "w", region, part[0], Privilege.READ_WRITE)
        rt.end_iteration("t")
        rt.sync()
        assert session.fallbacks == 1
        assert session.windows_replayed == 0

    def test_short_window_falls_back(self):
        # Fewer launches than the template: closing the window counts as
        # a miss even though every launch so far matched.
        rt, region, part = self._one_task_plan_and_live_runtime()
        session = rt.replay_session
        rt.begin_iteration("t")
        rt.end_iteration("t")
        assert session.fallbacks == 1
        assert session.windows_replayed == 0
