"""Batched replay: many right-hand sides through one compiled plan.

The plan is captured once (symbolically — no task bodies run) and every
system in the batch replays it on one shared live runtime.  Each entry
must be bitwise-identical to an individual fresh-launch solve of the
same system, and the replay must actually have engaged.
"""

import numpy as np
import pytest

from repro.api import make_planner
from repro.core.multiop import replay_batch
from repro.core.planner import SOL
from repro.core.solvers import SOLVER_REGISTRY
from repro.problems.generators import tridiagonal_toeplitz
from repro.runtime import Runtime

SIZE = 16
ITERATIONS = 3
N_RHS = 3


def _rhs(seed):
    return np.random.default_rng(seed).random(SIZE)


def _fresh_reference(A, b, solver):
    rt = Runtime(backend="serial")
    planner = make_planner(A, b, runtime=rt)
    ksm = SOLVER_REGISTRY[solver](planner)
    result = ksm.run_fixed(ITERATIONS)
    rt.sync()
    x = np.array(planner.get_array(SOL), copy=True)
    return list(result.measure_history), x


@pytest.mark.parametrize("solver", ["cg", "bicgstab"])
def test_batch_replay_matches_individual_fresh_solves(solver):
    A = tridiagonal_toeplitz(SIZE).tocsr()
    rhs_list = [_rhs(s) for s in range(N_RHS)]
    entries = replay_batch(A, rhs_list, solver=solver, iterations=ITERATIONS)
    assert len(entries) == N_RHS
    for b, entry in zip(rhs_list, entries):
        ref_hist, ref_x = _fresh_reference(A, b, solver)
        assert entry.windows_replayed == ITERATIONS
        assert entry.tasks_replayed > 0
        assert entry.fallbacks == 0
        assert list(entry.result.measure_history) == ref_hist
        assert np.array_equal(entry.x, ref_x)


def test_batch_shares_one_entry_region_across_systems():
    # §4.2 aliasing: all systems wrap the same matrix object, so the
    # shared runtime attaches the entry bytes exactly once.
    A = tridiagonal_toeplitz(SIZE).tocsr()
    entries = replay_batch(A, [_rhs(0), _rhs(1)], iterations=ITERATIONS)
    assert len(entries) == 2
    assert entries[0].tasks_replayed == entries[1].tasks_replayed > 0


def test_empty_batch_is_a_no_op():
    A = tridiagonal_toeplitz(SIZE).tocsr()
    assert replay_batch(A, []) == []


def test_unknown_solver_is_refused():
    A = tridiagonal_toeplitz(SIZE).tocsr()
    with pytest.raises(KeyError, match="unknown solver"):
        replay_batch(A, [_rhs(0)], solver="nope")
