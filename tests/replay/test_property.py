"""Satellite 2: hypothesis property suite for plan compilation.

(a) capture -> compile -> replay is deterministic across runs;
(b) a guard mismatch always falls back to fresh launches — a stale
    plan is never silently replayed, and the numerics stay correct;
(c) slot rebinding round-trips the per-iteration scalars exactly (the
    replayed trajectory is bit-for-bit the fresh trajectory, iteration
    by iteration, not just at the end).
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.planner import SOL
from repro.runtime import Runtime
from repro.sparse.plugin import matrix_format_names

from .conftest import make_solver, plan_for, reference_for, replayed_run

FEW = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

solvers = st.sampled_from(["cg", "bicgstab", "cgs", "tfqmr"])
formats = st.sampled_from(matrix_format_names())
piece_counts = st.integers(min_value=1, max_value=3)
seeds = st.integers(min_value=0, max_value=1000)


class TestDeterminism:
    @FEW
    @given(solver=solvers, fmt=formats, pieces=piece_counts, seed=seeds)
    def test_compile_is_pure_in_the_program(self, solver, fmt, pieces, seed):
        import repro.replay as replay_mod

        a = replay_mod.compile_solver_program(
            lambda rt: make_solver(rt, solver, fmt, pieces=pieces, seed=seed)
        )
        b = replay_mod.compile_solver_program(
            lambda rt: make_solver(rt, solver, fmt, pieces=pieces, seed=seed)
        )
        assert a.structure_hash == b.structure_hash
        assert [t.signature for t in a.tasks] == [t.signature for t in b.tasks]
        assert [t.intra_deps for t in a.tasks] == [t.intra_deps for t in b.tasks]
        assert [t.carried_deps for t in a.tasks] == [
            t.carried_deps for t in b.tasks
        ]

    @FEW
    @given(solver=solvers, fmt=formats, seed=seeds)
    def test_replay_is_deterministic_across_runs(self, solver, fmt, seed):
        first = replayed_run(solver, fmt, "serial", seed=seed)
        second = replayed_run(solver, fmt, "serial", seed=seed)
        assert first[0] == second[0]
        assert np.array_equal(first[1], second[1])
        assert first[2].windows_replayed == second[2].windows_replayed >= 1


class TestGuardFallback:
    @FEW
    @given(fmt=formats, pieces=piece_counts, seed=seeds)
    def test_stale_plan_never_silently_replays(self, fmt, pieces, seed):
        # Attach a *different solver's* plan: the very first guarded
        # launch mismatches, every window falls back to fresh launches,
        # and the numerics are exactly the fresh-launch numerics.
        stale = plan_for("bicgstab", fmt, pieces=pieces)
        rt = Runtime(backend="serial", plan=stale)
        ksm = make_solver(rt, "cg", fmt, pieces=pieces, seed=seed)
        result = ksm.solve(tolerance=0.0, max_iterations=3)
        rt.sync()
        x = np.array(ksm.planner.get_array(SOL), copy=True)
        session = rt.replay_session
        # A structurally-matching *prefix* may replay (the guard is
        # positional), but no window may ever complete as a replay, and
        # every window must have fallen back.
        assert session.windows_replayed == 0
        assert session.fallbacks >= 1
        ref_hist, ref_x = reference_for("cg", fmt, pieces=pieces, seed=seed)
        assert list(result.measure_history) == ref_hist
        assert np.array_equal(x, ref_x)

    def test_stale_plan_recaptures_and_resumes(self):
        stale = plan_for("bicgstab", "csr")
        rt = Runtime(backend="serial", plan=stale)
        ksm = make_solver(rt, "cg", "csr")
        result = ksm.solve(tolerance=0.0, max_iterations=16)
        rt.sync()
        session = rt.replay_session
        # Eight consecutive missed windows trigger windowed re-capture:
        # the session records fresh iterations, recompiles, and resumes
        # replaying against the new template instead of going dead.
        assert not session.dead
        assert session.recaptures == 1
        assert session.windows_replayed >= 1
        x = np.array(ksm.planner.get_array(SOL), copy=True)
        ref_hist, ref_x = reference_for("cg", "csr", iterations=16)
        assert list(result.measure_history) == ref_hist
        assert np.array_equal(x, ref_x)

    def test_recapture_exhausted_goes_dead(self):
        stale = plan_for("bicgstab", "csr")
        rt = Runtime(backend="serial", plan=stale)
        session = rt.replay_session
        session.max_recaptures = 0  # no re-capture budget at all
        ksm = make_solver(rt, "cg", "csr")
        ksm.solve(tolerance=0.0, max_iterations=12)
        session = rt.replay_session
        # With the budget exhausted, eight consecutive missed windows
        # kill the session for good (the historical behaviour).
        assert session.dead
        assert session.windows_replayed == 0
        assert session.recaptures == 0


class TestSlotRoundTrip:
    @FEW
    @given(solver=solvers, fmt=formats, seed=seeds)
    def test_per_iteration_solution_bits_round_trip(self, solver, fmt, seed):
        # Stronger than end-state equality: snapshot the solution vector
        # after every iteration.  Replay rebinds each iteration's scalar
        # futures (AXPY alphas etc.) through the slot table; any rounding
        # difference would show up in some iteration's bits.
        def run(plan):
            rt = Runtime(backend="serial", plan=plan)
            ksm = make_solver(rt, solver, fmt, seed=seed)
            snaps = []

            def snap(s, it, measure):
                rt.sync()
                snaps.append(np.array(s.planner.get_array(SOL), copy=True))

            ksm.solve(tolerance=0.0, max_iterations=3, callback=snap)
            return snaps, rt.replay_session

        fresh_snaps, _ = run(None)
        replay_snaps, session = run(plan_for(solver, fmt, seed=seed))
        assert session is not None and session.windows_replayed >= 1
        assert len(fresh_snaps) == len(replay_snaps) == 3
        for a, b in zip(fresh_snaps, replay_snaps):
            assert np.array_equal(a, b)
