"""Windowed re-capture, elided-fill replay, mid-window compensation,
and strict-portable dispatch.

The synthetic program here is built so its steady window contains a
*dead* fill (fully overwritten by a copy before any read) — real
solvers keep their fills in the initializer, outside the steady window,
so elision must be exercised explicitly.
"""

import numpy as np
import pytest

from repro.api import make_planner
from repro.core.planner import RHS, SOL
from repro.problems.generators import tridiagonal_toeplitz
from repro.replay import compile_solver_program
from repro.runtime import Privilege, ProcKind, Runtime, TaskLauncher
from repro.runtime.executor import ExecutorError

from .conftest import make_solver, plan_for

N = 16
FILL_VALUE = 7.0


class DeadFillProgram:
    """step(): fill tmp (dead), tmp <- rhs, sol += 0.5*tmp.

    With ``diverge=True`` the overwriting copy is skipped, so the fill
    becomes *live* and the task stream diverges right after the elided
    position — the compensation path must re-materialize the fill value
    before the fresh-launched axpy reads it.
    """

    def __init__(self, planner):
        self.planner = planner
        self.tmp = planner.allocate_workspace_vector()

    def step(self, diverge: bool = False) -> None:
        p = self.planner
        p.fill(self.tmp, FILL_VALUE)
        if not diverge:
            p.copy(self.tmp, RHS)
        p.axpy(SOL, 0.5, self.tmp)


def build_program(runtime, pieces=2):
    A = tridiagonal_toeplitz(N).tocsr()
    b = np.random.default_rng(0).random(N)
    planner = make_planner(A, b, n_pieces=pieces, runtime=runtime)
    return DeadFillProgram(planner)


def dead_fill_plan(pieces=2):
    return compile_solver_program(
        lambda rt: build_program(rt, pieces), optimize=True
    )


def run_program(plan, iterations, diverge_at=None, backend="serial",
                pieces=2):
    rt = Runtime(backend=backend, plan=plan)
    prog = build_program(rt, pieces)
    for i in range(iterations):
        rt.begin_iteration("step")
        prog.step(diverge=(diverge_at is not None and i >= diverge_at))
        rt.end_iteration("step")
    rt.sync()
    sol = np.array(prog.planner.get_array(SOL), copy=True)
    tmp = np.array(prog.planner.get_array(prog.tmp), copy=True)
    return sol, tmp, rt


class TestElidedReplay:
    def test_optimizer_elides_the_dead_fill(self):
        plan = dead_fill_plan()
        metrics = plan.meta["optimization"]
        assert metrics["elided_fills"] == 2  # one fill task per piece
        assert metrics["footprint_bytes_saved"] == 8 * N
        elided = [t for t in plan.tasks if t.elided]
        assert [t.name for t in elided] == ["fill", "fill"]
        assert all(t.overwriters for t in elided)
        assert all(t.intra_deps == () and t.carried_deps == () for t in elided)

    def test_elided_replay_is_bitwise_and_skips_bodies(self):
        plan = dead_fill_plan()
        ref_sol, ref_tmp, _ = run_program(None, 5)
        sol, tmp, rt = run_program(plan, 5)
        session = rt.replay_session
        assert session.windows_replayed >= 1
        assert session.fallbacks == 0
        # Two fill bodies per window never ran...
        assert session.tasks_elided == 2 * session.windows_replayed
        # ...and the numerics are untouched by the elision.
        assert np.array_equal(sol, ref_sol)
        assert np.array_equal(tmp, ref_tmp)
        assert rt.dispatch_stats()["session"]["tasks_elided"] > 0

    def test_mid_window_divergence_compensates_skipped_fills(self):
        # The program itself diverges at iteration 3: the copy vanishes,
        # the guard mismatches *after* the elided fill was skipped, and
        # the session must write FILL_VALUE back before the axpy runs.
        plan = dead_fill_plan()
        ref_sol, ref_tmp, _ = run_program(None, 6, diverge_at=3)
        sol, tmp, rt = run_program(plan, 6, diverge_at=3)
        session = rt.replay_session
        assert session.windows_replayed >= 1
        assert session.fallbacks >= 1
        # Compensation materialized the fill: tmp holds the fill value.
        assert np.array_equal(tmp, np.full(N, FILL_VALUE))
        assert np.array_equal(tmp, ref_tmp)
        assert np.array_equal(sol, ref_sol)


class TestRecapture:
    def test_recapture_swaps_plan_and_resumes_replay(self):
        # A stale plan (different solver) misses max_misses times, then
        # re-captures the live stream and replays the fresh template.
        stale = plan_for("bicgstab", "csr")
        rt = Runtime(backend="serial", plan=stale)
        ksm = make_solver(rt, "cg", "csr")
        ksm.solve(tolerance=0.0, max_iterations=16)
        rt.sync()
        session = rt.replay_session
        assert session.recaptures == 1
        assert not session.dead
        assert session.windows_replayed >= 1
        # The swapped-in template is a fresh compile of the live stream.
        assert session.plan.source == "recapture"
        assert session.plan.structure_hash != stale.structure_hash
        counters = rt.dispatch_stats()["session"]
        assert counters["recaptures"] == 1
        assert counters["tasks_elided"] == 0

    def test_recapture_preserves_optimize_setting(self):
        # The stale plan was compiled with optimize=True; the recompiled
        # template must run the pass pipeline again.
        stale = dead_fill_plan()
        rt = Runtime(backend="serial", plan=stale)
        ksm = make_solver(rt, "cg", "csr")
        result = ksm.solve(tolerance=0.0, max_iterations=16)
        rt.sync()
        session = rt.replay_session
        assert session.recaptures == 1
        assert session.windows_replayed >= 1
        assert session.plan.meta["optimize"] is True
        assert "optimization" in session.plan.meta
        # Numerics still match a fresh run despite the mid-run swap.
        from .conftest import reference_for

        ref_hist, ref_x = reference_for("cg", "csr", iterations=16)
        assert list(result.measure_history) == ref_hist
        x = np.array(ksm.planner.get_array(SOL), copy=True)
        assert np.array_equal(x, ref_x)


class TestStrictPortable:
    def test_certified_plan_arms_strict_dispatch(self):
        plan = dead_fill_plan()
        assert plan.meta["portability"]["certified"] is True
        rt = Runtime(backend="procs", plan=plan)
        try:
            inner = rt.executor
            while getattr(inner, "inner", None) is not None:
                inner = inner.inner
            assert inner.strict_portable is True
        finally:
            rt.executor.shutdown()

    def test_opaque_body_fails_loudly_under_strict_dispatch(self):
        rt = Runtime(backend="procs")
        try:
            inner = rt.executor
            while getattr(inner, "inner", None) is not None:
                inner = inner.inner
            inner.strict_portable = True
            prog = build_program(rt)
            region = prog.planner.vector(SOL).components[0].region
            sub = prog.planner.vector(SOL).components[0].partition[0]
            tl = TaskLauncher("opaque", lambda ctx: None,
                              proc_kind=ProcKind.CPU)
            tl.add_requirement(region, ["v"], sub, Privilege.READ_WRITE)
            rt.execute(tl)
            with pytest.raises(ExecutorError, match="strict portability"):
                rt.sync()
        finally:
            rt.executor.shutdown()
