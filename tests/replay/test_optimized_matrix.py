"""The optimized-plan bitwise matrix (hypothesis property suite).

Plans compiled through the verified pass pipeline (``optimize=True``:
dead-fill elision, privilege narrowing, portability certificate) must
replay **bitwise-identically** to the unoptimized plan and to a
fresh-launch serial reference — across all nine solvers × every
bitwise-enrolled registered format (plugins included, via
``FormatSpec.bitwise_matrix``) × serial/threads/procs.  On the procs
backend the certificate additionally arms strict-portable dispatch, so
the matrix proves itself over bodies that truly crossed the process
boundary (zero inline fallbacks).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.planner import SOL
from repro.core.solvers import SOLVER_REGISTRY
from repro.runtime import Runtime
from repro.sparse.plugin import matrix_format_names

from .conftest import (
    ITERATIONS,
    make_solver,
    optimized_plan_for,
    plan_for,
    reference_for,
    replayed_run,
)

FORMATS = tuple(matrix_format_names())

FEW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

solvers = st.sampled_from(sorted(SOLVER_REGISTRY))
formats = st.sampled_from(FORMATS)
piece_counts = st.integers(min_value=1, max_value=3)


def assert_bitwise(solver, fmt, backend, pieces=None):
    ref_hist, ref_x = reference_for(solver, fmt, pieces=pieces)
    hist, x, session = replayed_run(solver, fmt, backend, pieces=pieces,
                                    optimize=True)
    label = f"{solver}/{fmt}/{backend}/p{pieces}/optimized"
    assert session is not None, label
    assert session.windows_replayed == ITERATIONS, label
    assert session.fallbacks == 0, label
    assert hist == ref_hist, label
    assert np.array_equal(x, ref_x), label
    return session


class TestOptimizedBitwiseMatrix:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("solver", sorted(SOLVER_REGISTRY))
    def test_serial_and_threads_match_reference(self, solver, fmt):
        for backend in ("serial", "threads"):
            assert_bitwise(solver, fmt, backend, pieces=3)

    @pytest.mark.parametrize("solver", sorted(SOLVER_REGISTRY))
    def test_procs_matches_reference_with_zero_fallbacks(self, solver):
        ref_hist, ref_x = reference_for(solver, "csr", pieces=3)
        plan = optimized_plan_for(solver, "csr", pieces=3)
        rt = Runtime(backend="procs", plan=plan)
        try:
            ksm = make_solver(rt, solver, "csr", pieces=3)
            result = ksm.solve(tolerance=0.0, max_iterations=ITERATIONS)
            rt.sync()
            x = np.array(ksm.planner.get_array(SOL), copy=True)
            stats = rt.dispatch_stats()["executor"]
            session = rt.replay_session
        finally:
            rt.executor.shutdown()
        label = f"{solver}/csr/procs/optimized"
        # The certificate armed strict-portable dispatch: work really
        # shipped to workers, and nothing silently degraded inline.
        assert stats["strict_portable"] is True, label
        assert stats["dispatched_tasks"] > 0, label
        assert stats["inline_fallback_tasks"] == 0, label
        assert session.windows_replayed == ITERATIONS, label
        assert session.fallbacks == 0, label
        assert list(result.measure_history) == ref_hist, label
        assert np.array_equal(x, ref_x), label


class TestOptimizedProperties:
    @FEW
    @given(solver=solvers, fmt=formats, pieces=piece_counts)
    def test_optimized_equals_unoptimized_replay(self, solver, fmt, pieces):
        plain = replayed_run(solver, fmt, "serial", pieces=pieces)
        opt = replayed_run(solver, fmt, "serial", pieces=pieces,
                           optimize=True)
        assert plain[0] == opt[0]
        assert np.array_equal(plain[1], opt[1])
        assert opt[2].windows_replayed == plain[2].windows_replayed

    @FEW
    @given(solver=solvers, fmt=formats, pieces=piece_counts)
    def test_procs_sampled_formats_match(self, solver, fmt, pieces):
        session = assert_bitwise(solver, fmt, "procs", pieces=pieces)
        assert session.fallbacks == 0

    @FEW
    @given(solver=solvers, fmt=formats)
    def test_optimizer_metadata_is_conservative(self, solver, fmt):
        plain = plan_for(solver, fmt, pieces=2)
        opt = optimized_plan_for(solver, fmt, pieces=2)
        metrics = opt.meta["optimization"]
        # Narrowing may only shrink the interference set; elision may
        # only shrink the window; the certificate must hold (every
        # solver body lives in the kernel registry).
        assert (metrics["interference_edges_narrowed"]
                <= metrics["interference_edges_declared"])
        assert metrics["tasks_after"] <= metrics["tasks_before"]
        assert opt.meta["portability"]["certified"] is True
        # Elision and narrowing never change guard signatures.
        assert opt.structure_hash == plain.structure_hash
