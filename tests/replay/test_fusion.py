"""The plan-driven fusion pass.

Properties under test, on captured steady-state CG windows (the
op-major launch order makes per-piece chains *strided*, so the halo
case is adversarial, not convenient):

* group well-formedness — sorted, disjoint, size >= 2, single
  (device, point) per group, never a host task, never a REDUCE holder;
* safety — no group spans tasks of different pieces that the static
  checkers flag as interfering, and the contracted (cluster) graph over
  engine + interference edges stays acyclic, so fused nodes can always
  become ready;
* equivalence — a fused replay produces bitwise the histories and bits
  of the unfused fresh-launch serial reference on every backend, while
  actually fusing (``dispatch_stats`` counts groups).
"""

import numpy as np
import pytest

from repro.analyze import attach_plan_capture, static_interference_edges
from repro.analyze.fusion import fuse_window, window_subgraph
from repro.core.planner import SOL
from repro.replay import compile_solver_program
from repro.runtime import Runtime

from .conftest import ITERATIONS, make_solver, reference_for

BACKENDS = ("serial", "threads", "procs")

_FUSED_PLANS = {}


def fused_plan_for(solver="cg", fmt="csr", pieces=3):
    key = (solver, fmt, pieces)
    if key not in _FUSED_PLANS:
        _FUSED_PLANS[key] = compile_solver_program(
            lambda rt: make_solver(rt, solver, fmt, pieces=pieces), fuse=True
        )
    return _FUSED_PLANS[key]


def captured_window(solver="cg", fmt="csr", pieces=3):
    """The last steady-state window of a symbolic capture, as PlanTasks."""
    rt = Runtime(backend="capture")
    cap = attach_plan_capture(rt)
    ksm = make_solver(rt, solver, fmt, pieces=pieces)
    boundaries = [len(cap.plan.order)]
    for _ in range(2):
        ksm.step()
        boundaries.append(len(cap.plan.order))
    in_order = [cap.plan.tasks[tid] for tid in cap.plan.order]
    return in_order[boundaries[-2]: boundaries[-1]]


class TestGroupWellFormedness:
    def test_unfused_compile_has_no_groups(self):
        plan = compile_solver_program(
            lambda rt: make_solver(rt, "cg", "csr", pieces=3)
        )
        assert plan.fusion_groups == ()

    def test_fused_compile_finds_groups(self):
        plan = fused_plan_for()
        assert len(plan.fusion_groups) > 0
        assert "fusion group" in plan.describe()

    def test_groups_are_sorted_disjoint_and_nontrivial(self):
        plan = fused_plan_for()
        seen = set()
        for group in plan.fusion_groups:
            assert len(group) >= 2, group
            assert list(group) == sorted(group), group
            assert not (set(group) & seen), group
            seen |= set(group)
            assert all(0 <= pos < len(plan.tasks) for pos in group)

    def test_members_share_device_and_point(self):
        plan = fused_plan_for()
        for group in plan.fusion_groups:
            members = [plan.tasks[pos] for pos in group]
            assert len({t.device_id for t in members}) == 1, group
            assert len({t.point for t in members}) == 1, group
            # Host tasks (point None) are flush boundaries, never members.
            assert all(t.point is not None for t in members), group

    def test_no_member_holds_a_reduce_requirement(self):
        # Executors serialize same-redop overlap by launch-order
        # chaining; a reduce buried inside a coarse node would reorder
        # that chain.  signature = (name, point, reqs, ...), one req
        # tuple per requirement with the privilege name at index 3.
        plan = fused_plan_for()
        for group in plan.fusion_groups:
            for pos in group:
                reqs = plan.tasks[pos].signature[2]
                assert reqs, (group, pos)
                assert all(r[3] != "REDUCE" for r in reqs), (group, pos)


class TestGroupSafety:
    def test_never_merges_interfering_pieces(self):
        window = captured_window(pieces=3)
        groups = fuse_window(window)
        assert groups
        edges = static_interference_edges(window_subgraph(window))
        # Halo exchange makes neighbouring pieces interfere; if this
        # comes back empty the assertion below is vacuous.
        cross = [
            (i, j) for i, j in edges if window[i].point != window[j].point
        ]
        assert cross
        group_of = {pos: gi for gi, g in enumerate(groups) for pos in g}
        for i, j in cross:
            gi, gj = group_of.get(i), group_of.get(j)
            assert gi is None or gj is None or gi != gj, (i, j)

    def test_contracted_graph_is_acyclic(self):
        # Collapse each group to one cluster, orient engine +
        # interference edges by launch order, and Kahn the result: a
        # leftover node would be a fused-replay deadlock.
        window = captured_window(pieces=3)
        groups = fuse_window(window)
        cluster_of = {pos: ("g", gi) for gi, g in enumerate(groups) for pos in g}
        for pos in range(len(window)):
            cluster_of.setdefault(pos, ("t", pos))

        sub = window_subgraph(window)
        pairs = {(min(i, j), max(i, j)) for i, j in static_interference_edges(sub)}
        pos_of = {t.task_id: i for i, t in enumerate(window)}
        for j, task in enumerate(window):
            for dep in task.engine_deps:
                i = pos_of.get(dep)
                if i is not None:
                    pairs.add((min(i, j), max(i, j)))

        succs = {c: set() for c in set(cluster_of.values())}
        indeg = {c: 0 for c in succs}
        for i, j in pairs:
            ci, cj = cluster_of[i], cluster_of[j]
            if ci != cj and cj not in succs[ci]:
                succs[ci].add(cj)
                indeg[cj] += 1
        ready = [c for c, d in indeg.items() if d == 0]
        done = 0
        while ready:
            c = ready.pop()
            done += 1
            for nxt in succs[c]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
        assert done == len(succs)

    def test_single_piece_window_still_fuses(self):
        window = captured_window(pieces=1)
        groups = fuse_window(window)
        assert groups
        assert all(len(g) >= 2 for g in groups)


class TestFusedReplayEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fused_replay_matches_unfused_serial_bitwise(self, backend):
        ref_hist, ref_x = reference_for("cg", "csr", pieces=3)
        plan = fused_plan_for()
        rt = Runtime(backend=backend, plan=plan)
        try:
            ksm = make_solver(rt, "cg", "csr", pieces=3)
            result = ksm.solve(tolerance=0.0, max_iterations=ITERATIONS)
            rt.sync()
            x = np.array(ksm.planner.get_array(SOL), copy=True)
            stats = rt.dispatch_stats()
            session = rt.replay_session
        finally:
            rt.executor.shutdown()
        assert session.windows_replayed == ITERATIONS, backend
        assert session.fallbacks == 0, backend
        assert stats["fused_groups"] > 0, stats
        assert stats["fused_tasks"] >= 2 * stats["fused_groups"], stats
        assert list(result.measure_history) == ref_hist, backend
        assert np.array_equal(x, ref_x), backend

    def test_fused_threads_executor_counts_groups(self):
        plan = fused_plan_for()
        rt = Runtime(backend="threads", plan=plan)
        try:
            ksm = make_solver(rt, "cg", "csr", pieces=3)
            ksm.solve(tolerance=0.0, max_iterations=ITERATIONS)
            rt.sync()
            stats = rt.dispatch_stats()["executor"]
        finally:
            rt.executor.shutdown()
        assert stats["fused_groups"] > 0, stats
