"""The serial-vs-procs bitwise equivalence matrix.

All nine solvers × every bitwise-enrolled registered format (see
``FormatSpec.bitwise_matrix`` — plugins auto-enroll here) × piece
counts must produce bitwise-identical residual histories and solution
vectors under the process-pool backend, both fresh-launched and
replayed from a compiled plan — with *zero* inline fallbacks, so the
equivalence is established over bodies that actually crossed the
process boundary, not over a silent in-parent degradation.
"""

import numpy as np
import pytest

from repro.core.planner import SOL
from repro.core.solvers import SOLVER_REGISTRY
from repro.runtime import Runtime
from repro.sparse.plugin import matrix_format_names

from .conftest import ITERATIONS, make_solver, reference_for, replayed_run

FORMATS = tuple(matrix_format_names())
PIECE_COUNTS = (1, 3)


def fresh_procs_run(solver, fmt, pieces):
    """Fresh-launch run on the procs backend: (history, x, exec stats)."""
    rt = Runtime(backend="procs")
    try:
        ksm = make_solver(rt, solver, fmt, pieces=pieces)
        result = ksm.solve(tolerance=0.0, max_iterations=ITERATIONS)
        rt.sync()
        x = np.array(ksm.planner.get_array(SOL), copy=True)
        stats = rt.dispatch_stats()["executor"]
    finally:
        rt.executor.shutdown()
    return list(result.measure_history), x, stats


@pytest.mark.parametrize("fmt", FORMATS)
@pytest.mark.parametrize("solver", sorted(SOLVER_REGISTRY))
def test_fresh_procs_matches_fresh_serial_bitwise(solver, fmt):
    for pieces in PIECE_COUNTS:
        ref_hist, ref_x = reference_for(solver, fmt, pieces=pieces)
        hist, x, stats = fresh_procs_run(solver, fmt, pieces)
        label = f"{solver}/{fmt}/procs/p{pieces}"
        # Work actually shipped to workers and nothing degraded inline.
        assert stats["dispatched_tasks"] > 0, (label, stats)
        assert stats["inline_fallback_tasks"] == 0, (label, stats)
        assert hist == ref_hist, label
        assert np.array_equal(x, ref_x), label


@pytest.mark.parametrize("fmt", FORMATS)
@pytest.mark.parametrize("solver", sorted(SOLVER_REGISTRY))
def test_replayed_procs_matches_fresh_serial_bitwise(solver, fmt):
    for pieces in PIECE_COUNTS:
        ref_hist, ref_x = reference_for(solver, fmt, pieces=pieces)
        hist, x, session = replayed_run(solver, fmt, "procs", pieces=pieces)
        label = f"{solver}/{fmt}/procs-replay/p{pieces}"
        assert session is not None, label
        assert session.windows_replayed == ITERATIONS, label
        assert session.fallbacks == 0, label
        assert hist == ref_hist, label
        assert np.array_equal(x, ref_x), label
