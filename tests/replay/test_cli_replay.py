"""`repro replay` CLI and the driver report: exit codes, summary text,
JSON schema, and the overhead gate."""

import json

import pytest

from repro.cli import main
from repro.replay import run_replay


class TestExitCodes:
    def test_successful_replay_exits_zero(self, capsys):
        code = main(["replay", "cg", "--size", "16", "--iterations", "3"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "bitwise" in out
        assert "windows" in out

    def test_unknown_program_exits_two(self, capsys):
        code = main(["replay", "frobnicate"])
        out = capsys.readouterr().out
        assert code == 2
        assert "replay:" in out

    def test_unsatisfiable_overhead_gate_exits_one(self, capsys):
        # A ratio no implementation can meet: the gate must fail the run
        # while the numerics still verify.
        code = main(
            ["replay", "cg", "--size", "16", "--iterations", "3",
             "--max-overhead-ratio", "1e-9"]
        )
        out = capsys.readouterr().out
        assert code == 1, out


class TestJsonExport:
    def test_report_schema(self, tmp_path, capsys):
        target = tmp_path / "report.json"
        code = main(
            ["replay", "cg", "--size", "16", "--iterations", "3",
             "--backend", "threads", "--json", str(target)]
        )
        assert code == 0, capsys.readouterr().out
        payload = json.loads(target.read_text())
        assert payload["schema"] == "repro-replay/1"
        assert payload["program"] == "cg"
        assert payload["backend"] == "threads"
        assert payload["bitwise_match"] is True
        assert payload["windows_replayed"] == 3
        assert payload["fallbacks"] == 0
        assert payload["structure_hash"]


class TestDriver:
    def test_report_fields_and_ok(self):
        report = run_replay("cg", size=16, iterations=3)
        assert report.ok
        assert report.bitwise_match
        assert report.windows_replayed == 3
        assert report.window > 0
        assert report.overhead_ratio is None or report.overhead_ratio > 0
        assert report.summary()

    def test_fig8_program_and_pcg_preconditioner(self):
        # fig8-* resolves to the Laplacian family; pcg exercises the
        # implicit jacobi preconditioner in the factory.
        report = run_replay("fig8-pcg", iterations=2)
        assert report.ok, report.summary()
        assert report.solver == "pcg"

    def test_unknown_program_is_refused(self):
        with pytest.raises(KeyError, match="unknown program"):
            run_replay("frobnicate")

    def test_program_names_cover_solvers(self):
        from repro.replay import replay_program_names

        names = replay_program_names()
        assert "cg" in names and "fig8-cg" in names

    def test_report_edge_cases(self):
        from repro.replay import ReplayReport

        report = ReplayReport(
            program="cg", solver="cg", backend="serial", fmt="csr",
            seed=0, pieces=None, iterations=1, structure_hash="ab" * 32,
            window=5, windows_replayed=0, tasks_replayed=0, fallbacks=1,
            fresh_ns_per_task=0.0, replay_ns_per_task=100.0,
            bitwise_match=False,
        )
        # No fresh baseline -> no ratio; no replayed window -> not ok.
        assert report.overhead_ratio is None
        assert not report.ok
        assert "MISMATCH" in report.summary()
