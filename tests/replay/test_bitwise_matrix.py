"""Satellite 1: the bitwise-equivalence matrix.

All nine solvers × every bitwise-enrolled registered format (plugins
auto-enroll via ``FormatSpec.bitwise_matrix``) × {serial, threads} ×
piece counts: replayed iterations must produce bitwise-identical
residual histories and solution vectors vs a fresh-launch serial run,
and the replay must actually have engaged (windows replayed, zero
fallbacks — a silently fresh-launching run would pass the bitwise bar
vacuously).
"""

import numpy as np
import pytest

from repro.core.solvers import SOLVER_REGISTRY
from repro.sparse.plugin import matrix_format_names

from .conftest import ITERATIONS, reference_for, replayed_run

FORMATS = tuple(matrix_format_names())
BACKENDS = ("serial", "threads")
PIECE_COUNTS = (1, 3)


@pytest.mark.parametrize("fmt", FORMATS)
@pytest.mark.parametrize("solver", sorted(SOLVER_REGISTRY))
def test_replay_matches_fresh_serial_bitwise(solver, fmt):
    for pieces in PIECE_COUNTS:
        ref_hist, ref_x = reference_for(solver, fmt, pieces=pieces)
        for backend in BACKENDS:
            hist, x, session = replayed_run(solver, fmt, backend, pieces=pieces)
            label = f"{solver}/{fmt}/{backend}/p{pieces}"
            assert session is not None, label
            assert session.windows_replayed >= 1, label
            assert session.fallbacks == 0, label
            assert session.windows_replayed == ITERATIONS, label
            assert hist == ref_hist, label
            assert np.array_equal(x, ref_x), label
