"""Shared builders for the replay test matrix.

Compiled plans and fresh-launch serial references are cached per
``(solver, fmt, size, pieces, seed, iterations)`` so the bitwise matrix
pays for each expensive artifact once, not once per backend.
"""

from typing import Dict, List, Optional, Tuple

import numpy as np
import pytest

from repro.api import make_planner
from repro.core.planner import SOL
from repro.core.solvers import SOLVER_REGISTRY
from repro.problems.generators import tridiagonal_toeplitz
from repro.replay import CompiledPlan, compile_solver_program
from repro.runtime import Runtime
from repro.verify.oracle import build_format

SIZE = 16
ITERATIONS = 3


def make_solver(runtime: Runtime, solver: str, fmt: str, size: int = SIZE,
                pieces: Optional[int] = None, seed: int = 0):
    """Build one seeded SPD system + solver on ``runtime`` (the chaos
    problem family: every stock method converges on it)."""
    A = tridiagonal_toeplitz(size).tocsr()
    b = np.random.default_rng(seed).random(size)
    planner = make_planner(
        build_format(fmt, A),
        b,
        n_pieces=pieces,
        runtime=runtime,
        preconditioner="jacobi" if solver == "pcg" else None,
    )
    return SOLVER_REGISTRY[solver](planner)


_PLANS: Dict[Tuple, CompiledPlan] = {}
_REFS: Dict[Tuple, Tuple[List[float], np.ndarray]] = {}


def plan_for(solver: str, fmt: str, size: int = SIZE,
             pieces: Optional[int] = None, seed: int = 0) -> CompiledPlan:
    key = (solver, fmt, size, pieces, seed)
    if key not in _PLANS:
        _PLANS[key] = compile_solver_program(
            lambda rt: make_solver(rt, solver, fmt, size, pieces, seed)
        )
    return _PLANS[key]


def optimized_plan_for(solver: str, fmt: str, size: int = SIZE,
                       pieces: Optional[int] = None,
                       seed: int = 0) -> CompiledPlan:
    """Like :func:`plan_for` but through the verified pass pipeline
    (dead-fill elision + privilege narrowing + portability certificate)."""
    key = ("opt", solver, fmt, size, pieces, seed)
    if key not in _PLANS:
        _PLANS[key] = compile_solver_program(
            lambda rt: make_solver(rt, solver, fmt, size, pieces, seed),
            optimize=True,
        )
    return _PLANS[key]


def reference_for(solver: str, fmt: str, size: int = SIZE,
                  pieces: Optional[int] = None, seed: int = 0,
                  iterations: int = ITERATIONS) -> Tuple[List[float], np.ndarray]:
    """Fresh-launch serial run: (residual history, solution bits)."""
    key = (solver, fmt, size, pieces, seed, iterations)
    if key not in _REFS:
        rt = Runtime(backend="serial")
        ksm = make_solver(rt, solver, fmt, size, pieces, seed)
        result = ksm.solve(tolerance=0.0, max_iterations=iterations)
        rt.sync()
        x = np.array(ksm.planner.get_array(SOL), copy=True)
        _REFS[key] = (list(result.measure_history), x)
    return _REFS[key]


def replayed_run(solver: str, fmt: str, backend: str, size: int = SIZE,
                 pieces: Optional[int] = None, seed: int = 0,
                 iterations: int = ITERATIONS, optimize: bool = False):
    """Solve with the compiled plan attached; returns
    (history, x, session)."""
    maker = optimized_plan_for if optimize else plan_for
    plan = maker(solver, fmt, size, pieces, seed)
    rt = Runtime(backend=backend, plan=plan)
    ksm = make_solver(rt, solver, fmt, size, pieces, seed)
    result = ksm.solve(tolerance=0.0, max_iterations=iterations)
    rt.sync()
    x = np.array(ksm.planner.get_array(SOL), copy=True)
    return list(result.measure_history), x, rt.replay_session


@pytest.fixture(scope="session")
def all_solvers():
    return sorted(SOLVER_REGISTRY)
