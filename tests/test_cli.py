"""The ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


class TestSolveCommand:
    def test_solve_converges(self, capsys):
        rc = main(["solve", "--stencil", "1d3", "--n", "256", "--solver", "cg"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged=True" in out
        assert "time/iteration" in out

    def test_solver_choices(self, capsys):
        rc = main(["solve", "--stencil", "1d3", "--n", "128", "--solver", "minres"])
        assert rc == 0

    def test_nonconvergence_exit_code(self, capsys):
        rc = main([
            "solve", "--stencil", "2d5", "--n", "4096",
            "--solver", "gmres", "--tol", "1e-14", "--max-iterations", "2",
        ])
        assert rc == 1


class TestFigureCommands:
    def test_fig8_small(self, capsys, tmp_path):
        out = tmp_path / "fig8.txt"
        rc = main([
            "fig8", "--stencils", "1d3", "--solvers", "cg",
            "--sizes", "12", "--warmup", "1", "--timed", "2",
            "--out", str(out),
        ])
        assert rc == 0
        assert "geomean improvement" in out.read_text()
        assert "1d3 / cg" in capsys.readouterr().out

    def test_fig8_model_mode(self, capsys):
        rc = main([
            "fig8", "--mode", "model", "--stencils", "2d5",
            "--solvers", "cg", "--sizes", "28", "--nodes", "16",
        ])
        assert rc == 0
        assert "legion" in capsys.readouterr().out

    def test_fig9(self, capsys):
        rc = main(["fig9", "--exponents", "5", "--scale", "16"])
        assert rc == 0
        assert "single" in capsys.readouterr().out

    def test_fig10(self, capsys):
        rc = main([
            "fig10", "--grid-exp", "7", "--nodes", "4",
            "--iterations", "30", "--load-period", "15",
        ])
        assert rc == 0
        assert "paper: 66%" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_bad_stencil_rejected(self):
        with pytest.raises(SystemExit):
            main(["solve", "--stencil", "9pt"])
