"""Multi-operator systems: components, aliasing, interference analysis."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.multiop import MultiOperatorSystem, OperatorComponent
from repro.core.vectors import VectorComponent
from repro.runtime import IndexSpace, Partition, Runtime, ShardedMapper, lassen
from repro.sparse import CSRMatrix


@pytest.fixture
def rt():
    m = lassen(1)
    return Runtime(machine=m, mapper=ShardedMapper(m))


def make_component(rt, matrix, sol_comp, rhs_comp, sol_idx=0, rhs_idx=0, hints=None):
    return OperatorComponent(rt, matrix, sol_idx, rhs_idx, sol_comp, rhs_comp, piece_hints=hints)


@pytest.fixture
def square(rt, rng):
    n = 16
    space = IndexSpace.linear(n)
    A = sp.random(n, n, density=0.3, random_state=np.random.default_rng(1), format="csr")
    A = (A + sp.identity(n)).tocsr()
    matrix = CSRMatrix.from_scipy(A, domain_space=space, range_space=space)
    part = Partition.equal(space, 4)
    sol = VectorComponent(rt, space, part)
    rhs = VectorComponent(rt, space, part)
    return rt, matrix, sol, rhs


class TestOperatorComponent:
    def test_copartitions_follow_output_partition(self, square):
        rt, matrix, sol, rhs = square
        comp = make_component(rt, matrix, sol, rhs)
        assert comp.n_pieces == 4
        assert len(comp.kernels) == 4
        assert comp.kernel_partition.parent is matrix.kernel_space
        assert comp.domain_partition.parent is matrix.domain_space

    def test_space_mismatch_rejected(self, rt, square):
        _, matrix, sol, rhs = square
        other_space = IndexSpace.linear(16)
        foreign = VectorComponent(rt, other_space, Partition.equal(other_space, 2))
        with pytest.raises(ValueError):
            make_component(rt, matrix, foreign, rhs)
        with pytest.raises(ValueError):
            make_component(rt, matrix, sol, foreign)

    def test_piece_hints_validated(self, square):
        rt, matrix, sol, rhs = square
        with pytest.raises(ValueError):
            make_component(rt, matrix, sol, rhs, hints=[1, 2])  # wrong count
        comp = make_component(rt, matrix, sol, rhs, hints=[10, 11, 12, 13])
        assert comp.hint_for(2) == 12

    def test_default_hint_uses_rhs_offset(self, square):
        rt, matrix, sol, rhs = square
        rhs.piece_offset = 7
        comp = make_component(rt, matrix, sol, rhs)
        assert comp.hint_for(1) == 8

    def test_adjoint_plan_cached(self, square):
        rt, matrix, sol, rhs = square
        comp = make_component(rt, matrix, sol, rhs)
        kp1, rp1, dp1, k1 = comp.adjoint_plan()
        kp2, _, _, k2 = comp.adjoint_plan()
        assert kp1 is kp2 and k1 is k2
        assert len(k1) == sol.n_pieces

    def test_entry_region_shared_for_same_matrix(self, square):
        rt, matrix, sol, rhs = square
        a = make_component(rt, matrix, sol, rhs)
        b = make_component(rt, matrix, sol, rhs)
        assert a.entry_region is b.entry_region


class TestMultiOperatorSystem:
    def test_lookup_by_indices(self, square):
        rt, matrix, sol, rhs = square
        system = MultiOperatorSystem()
        system.add(make_component(rt, matrix, sol, rhs, 0, 0))
        system.add(make_component(rt, matrix, sol, rhs, 0, 1))
        assert len(system) == 2
        assert len(system.by_rhs(0)) == 1
        assert len(system.by_rhs(1)) == 1
        assert len(system.by_sol(0)) == 2
        assert len(system.by_sol(1)) == 0

    def test_interference_pairs_same_rhs_overlap(self, square):
        rt, matrix, sol, rhs = square
        system = MultiOperatorSystem()
        a = make_component(rt, matrix, sol, rhs, 0, 0)
        b = make_component(rt, matrix, sol, rhs, 0, 0)
        system.add(a)
        system.add(b)
        pairs = system.interference()
        # Two full copies of the same matrix: every piece pair with
        # matching output rows interferes.
        assert pairs, "aliasing operators must be detected as interfering"
        # Cached: a second call returns the same object.
        assert system.interference() is pairs

    def test_no_interference_across_rhs_components(self, square):
        rt, matrix, sol, rhs = square
        system = MultiOperatorSystem()
        system.add(make_component(rt, matrix, sol, rhs, 0, 0))
        system.add(make_component(rt, matrix, sol, rhs, 0, 1))
        assert system.interference() == []

    def test_adding_invalidates_cache(self, square):
        rt, matrix, sol, rhs = square
        system = MultiOperatorSystem()
        system.add(make_component(rt, matrix, sol, rhs, 0, 0))
        assert system.interference() == []
        system.add(make_component(rt, matrix, sol, rhs, 0, 0))
        assert system.interference() != []

    def test_aliasing_byte_accounting(self, square):
        rt, matrix, sol, rhs = square
        system = MultiOperatorSystem()
        for _ in range(3):
            system.add(make_component(rt, matrix, sol, rhs, 0, 0))
        assert system.total_stored_bytes() == matrix.nnz * 8
        assert system.total_logical_bytes() == 3 * matrix.nnz * 8
