"""Property-based: random planner-op programs match a NumPy oracle.

A random sequence of planner operations (copy/scal/axpy/xpay/matmul/
dot) executed through the full task stack must produce exactly what the
same sequence produces on plain NumPy arrays — under every partitioning.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.core import Planner
from repro.runtime import IndexSpace, Partition, Runtime, ShardedMapper, lassen
from repro.sparse import CSRMatrix

N = 24
N_WS = 3  # workspace vectors 2, 3, 4


def fresh_planner(n_pieces, x0, b, A):
    machine = lassen(2)
    runtime = Runtime(machine=machine, mapper=ShardedMapper(machine))
    planner = Planner(runtime)
    space = IndexSpace.linear(N)
    part = Partition.equal(space, n_pieces)
    planner.add_sol_vector((space, x0.copy()), part)
    planner.add_rhs_vector((space, b.copy()), part)
    planner.add_operator(
        CSRMatrix.from_scipy(A, domain_space=space, range_space=space), 0, 0
    )
    for _ in range(N_WS):
        planner.allocate_workspace_vector()
    return planner


@st.composite
def op_programs(draw):
    n_ops = draw(st.integers(1, 12))
    ops = []
    vec = st.integers(0, 1 + N_WS)
    scalarish = st.floats(-2.0, 2.0, allow_nan=False).map(lambda v: round(v, 3))
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["copy", "scal", "axpy", "xpay", "matmul", "dot"]))
        if kind == "copy":
            ops.append(("copy", draw(vec), draw(vec)))
        elif kind == "scal":
            ops.append(("scal", draw(vec), draw(scalarish)))
        elif kind in ("axpy", "xpay"):
            ops.append((kind, draw(vec), draw(scalarish), draw(vec)))
        elif kind == "matmul":
            # dst must differ from src (in-place products are rejected,
            # as in PETSc's MatMult) and be a workspace so the oracle
            # comparison stays simple.
            dst = draw(st.integers(2, 1 + N_WS))
            src = draw(vec.filter(lambda v, d=dst: v != d))
            ops.append(("matmul", dst, src))
        else:
            ops.append(("dot", draw(vec), draw(vec)))
    return ops


def run_oracle(ops, x0, b, A):
    vecs = [x0.copy(), b.copy()] + [np.zeros(N) for _ in range(N_WS)]
    dots = []
    for op in ops:
        if op[0] == "copy":
            vecs[op[1]] = vecs[op[2]].copy()
        elif op[0] == "scal":
            vecs[op[1]] = op[2] * vecs[op[1]]
        elif op[0] == "axpy":
            vecs[op[1]] = vecs[op[1]] + op[2] * vecs[op[3]]
        elif op[0] == "xpay":
            vecs[op[1]] = vecs[op[3]] + op[2] * vecs[op[1]]
        elif op[0] == "matmul":
            vecs[op[1]] = A @ vecs[op[2]]
        else:
            dots.append(float(np.dot(vecs[op[1]], vecs[op[2]])))
    return vecs, dots


def run_planner(ops, planner):
    dots = []
    for op in ops:
        if op[0] == "copy":
            planner.copy(op[1], op[2])
        elif op[0] == "scal":
            planner.scal(op[1], op[2])
        elif op[0] == "axpy":
            planner.axpy(op[1], op[2], op[3])
        elif op[0] == "xpay":
            planner.xpay(op[1], op[2], op[3])
        elif op[0] == "matmul":
            planner.matmul(op[1], op[2])
        else:
            dots.append(planner.dot_product(op[1], op[2]).value)
    return dots


@pytest.fixture(scope="module")
def system():
    rng = np.random.default_rng(99)
    A = sp.random(N, N, density=0.3, random_state=np.random.default_rng(42), format="csr")
    A = (A + sp.identity(N)).tocsr()
    return A, rng.normal(size=N), rng.normal(size=N)


@given(ops=op_programs(), n_pieces=st.sampled_from([1, 3, 8]))
@settings(max_examples=40, deadline=None)
def test_random_program_matches_numpy_oracle(ops, n_pieces, system):
    A, x0, b = system
    planner = fresh_planner(n_pieces, x0, b, A)
    got_dots = run_planner(ops, planner)
    want_vecs, want_dots = run_oracle(ops, x0, b, A)
    for vid in range(2 + N_WS):
        np.testing.assert_allclose(
            planner.get_array(vid), want_vecs[vid], atol=1e-9,
            err_msg=f"vector {vid} after {ops}",
        )
    np.testing.assert_allclose(got_dots, want_dots, atol=1e-9)


@given(ops=op_programs())
@settings(max_examples=15, deadline=None)
def test_partitioning_invariance(ops, system):
    """The same program under different canonical partitions produces
    identical results (P3, property-based)."""
    A, x0, b = system
    results = []
    for n_pieces in (1, 4):
        planner = fresh_planner(n_pieces, x0, b, A)
        run_planner(ops, planner)
        results.append(
            np.concatenate([planner.get_array(v) for v in range(2 + N_WS)])
        )
    np.testing.assert_allclose(results[0], results[1], atol=1e-12)
