"""The planner API of Figures 5–6: setup rules and operation semantics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core import Planner, RHS, SOL
from repro.runtime import IndexSpace, Partition, Runtime, ShardedMapper, lassen
from repro.sparse import CSRMatrix


def make_planner_raw(n=32, pieces=4, nodes=2):
    machine = lassen(nodes)
    runtime = Runtime(machine=machine, mapper=ShardedMapper(machine))
    return Planner(runtime)


@pytest.fixture
def square_setup(rng):
    """A square single-operator system with random data, plus references."""
    n = 48
    A = sp.random(n, n, density=0.2, random_state=np.random.default_rng(2), format="csr")
    A.data[:] = rng.normal(size=A.nnz)
    A = (A + sp.identity(n)).tocsr()
    x0 = rng.normal(size=n)
    b = rng.normal(size=n)
    planner = make_planner_raw()
    space = IndexSpace.linear(n)
    part = Partition.equal(space, 4)
    sid = planner.add_sol_vector((space, x0), part)
    rid = planner.add_rhs_vector((space, b), part)
    matrix = CSRMatrix.from_scipy(A, domain_space=space, range_space=space)
    planner.add_operator(matrix, sid, rid)
    return planner, A, x0, b


class TestSetupRules:
    def test_spaces_queryable_before_freeze(self):
        planner = make_planner_raw()
        sid = planner.add_sol_vector(np.zeros(10))
        rid = planner.add_rhs_vector(np.zeros(10))
        assert planner.sol_space(sid).volume == 10
        assert planner.rhs_space(rid).volume == 10

    def test_freeze_blocks_mutation(self, square_setup):
        planner, *_ = square_setup
        planner.is_square()  # freezes
        with pytest.raises(RuntimeError):
            planner.add_sol_vector(np.zeros(4))
        with pytest.raises(RuntimeError):
            planner.add_operator(None, 0, 0)

    def test_solving_without_vectors_rejected(self):
        planner = make_planner_raw()
        with pytest.raises(RuntimeError):
            planner.is_square()

    def test_is_square_true_for_shared_spaces(self, square_setup):
        planner, *_ = square_setup
        assert planner.is_square()
        assert not planner.has_preconditioner()

    def test_is_square_false_for_distinct_spaces(self):
        planner = make_planner_raw()
        planner.add_sol_vector(np.zeros(10))
        planner.add_rhs_vector(np.zeros(10))  # different space objects
        assert not planner.is_square()

    def test_operator_space_mismatch_rejected(self):
        planner = make_planner_raw()
        sid = planner.add_sol_vector(np.zeros(10))
        rid = planner.add_rhs_vector(np.zeros(10))
        foreign = CSRMatrix.from_scipy(sp.identity(10, format="csr"))
        planner.add_operator(foreign, sid, rid)
        with pytest.raises(ValueError):
            planner.is_square()  # freeze performs the check

    def test_tuple_ingest_length_checked(self):
        planner = make_planner_raw()
        with pytest.raises(ValueError):
            planner.add_sol_vector((IndexSpace.linear(5), np.zeros(6)))


class TestVectorOps:
    def test_copy_scal_axpy_xpay_fill(self, square_setup, rng):
        planner, A, x0, b = square_setup
        w1 = planner.allocate_workspace_vector()
        w2 = planner.allocate_workspace_vector()
        planner.copy(w1, RHS)
        np.testing.assert_allclose(planner.get_array(w1), b)
        planner.scal(w1, 2.0)
        np.testing.assert_allclose(planner.get_array(w1), 2 * b)
        planner.copy(w2, SOL)
        planner.axpy(w2, -1.5, w1)
        np.testing.assert_allclose(planner.get_array(w2), x0 - 3 * b)
        planner.xpay(w2, 0.5, RHS)
        np.testing.assert_allclose(planner.get_array(w2), b + 0.5 * (x0 - 3 * b))
        planner.fill(w2, 7.0)
        assert (planner.get_array(w2) == 7.0).all()

    def test_dot_and_norm(self, square_setup):
        planner, A, x0, b = square_setup
        d = planner.dot_product(SOL, RHS)
        assert d.value == pytest.approx(np.dot(x0, b))
        assert planner.norm(RHS).value == pytest.approx(np.linalg.norm(b))
        assert planner.dot is Planner.dot_product or d is not None  # alias exists

    def test_dot_carries_future_deps(self, square_setup):
        planner, *_ = square_setup
        d = planner.dot_product(SOL, RHS)
        assert len(d.future_deps) == 1

    def test_shape_mismatch_rejected(self, square_setup):
        planner, *_ = square_setup
        planner2 = make_planner_raw()
        planner2.add_sol_vector(np.zeros(12))
        planner2.add_rhs_vector(np.zeros(12))
        with pytest.raises(IndexError):
            planner.copy(SOL, 99)  # bad id
        # mismatched sizes within one planner:
        p3 = make_planner_raw()
        p3.add_sol_vector(np.zeros(8))
        p3.add_rhs_vector(np.zeros(12))
        with pytest.raises(ValueError):
            p3.copy(SOL, RHS)

    def test_workspace_shape_choice(self):
        planner = make_planner_raw()
        planner.add_sol_vector(np.zeros(8))
        planner.add_rhs_vector(np.zeros(12))
        ws_sol = planner.allocate_workspace_vector(SOL)
        ws_rhs = planner.allocate_workspace_vector(RHS)
        assert planner.get_array(ws_sol).size == 8
        assert planner.get_array(ws_rhs).size == 12
        with pytest.raises(ValueError):
            planner.allocate_workspace_vector(5)


class TestMatmul:
    def test_matmul_matches_scipy(self, square_setup):
        planner, A, x0, b = square_setup
        out = planner.allocate_workspace_vector()
        planner.matmul(out, SOL)
        np.testing.assert_allclose(planner.get_array(out), A @ x0, atol=1e-10)

    def test_matmul_repeated_iterations_consistent(self, square_setup, rng):
        planner, A, x0, b = square_setup
        out = planner.allocate_workspace_vector()
        src = planner.allocate_workspace_vector()
        for _ in range(3):
            v = rng.normal(size=48)
            planner.set_array(src, v)
            planner.matmul(out, src)
            np.testing.assert_allclose(planner.get_array(out), A @ v, atol=1e-10)

    def test_matmul_adjoint_matches_transpose(self, square_setup, rng):
        planner, A, x0, b = square_setup
        out = planner.allocate_workspace_vector(SOL)
        planner.matmul_adjoint(out, RHS)
        np.testing.assert_allclose(planner.get_array(out), A.T @ b, atol=1e-10)

    def test_rectangular_system(self, rng):
        """Non-square systems: matmul maps SOL-shaped to RHS-shaped."""
        A = sp.random(10, 16, density=0.4, random_state=np.random.default_rng(4), format="csr")
        A.data[:] = rng.normal(size=A.nnz)
        planner = make_planner_raw()
        D = IndexSpace.linear(16)
        R = IndexSpace.linear(10)
        x = rng.normal(size=16)
        sid = planner.add_sol_vector((D, x), Partition.equal(D, 4))
        rid = planner.add_rhs_vector((R, np.zeros(10)), Partition.equal(R, 2))
        planner.add_operator(CSRMatrix.from_scipy(A, domain_space=D, range_space=R), sid, rid)
        assert not planner.is_square()
        out = planner.allocate_workspace_vector(RHS)
        planner.matmul(out, SOL)
        np.testing.assert_allclose(planner.get_array(out), A @ x, atol=1e-10)

    def test_residual_norm(self, square_setup):
        planner, A, x0, b = square_setup
        r = planner.residual_norm()
        assert r.value == pytest.approx(np.linalg.norm(A @ x0 - b))
        # Second call reuses the cached workspace (vector count stable).
        n_before = len(planner._vectors)
        planner.residual_norm()
        assert len(planner._vectors) == n_before

    def test_inplace_matmul_rejected(self, square_setup):
        planner, *_ = square_setup
        ws = planner.allocate_workspace_vector()
        with pytest.raises(ValueError, match="dst != src"):
            planner.matmul(ws, ws)
        with pytest.raises(ValueError, match="dst != src"):
            planner.matmul_adjoint(ws, ws)

    def test_psolve_identity_without_preconditioner(self, square_setup):
        planner, A, x0, b = square_setup
        out = planner.allocate_workspace_vector()
        planner.psolve(out, RHS)
        np.testing.assert_allclose(planner.get_array(out), b)


class TestMultiComponentMatmul:
    def test_two_component_block_system(self, rng):
        """A 2×2 block system assembled from four operators."""
        n = 12
        blocks = {}
        for i in range(2):
            for j in range(2):
                B = sp.random(n, n, density=0.3,
                              random_state=np.random.default_rng(10 * i + j), format="csr")
                B.data[:] = rng.normal(size=B.nnz)
                blocks[(i, j)] = B.tocsr()
        planner = make_planner_raw()
        spaces = [IndexSpace.linear(n), IndexSpace.linear(n)]
        x_parts = [rng.normal(size=n) for _ in range(2)]
        sids = [planner.add_sol_vector((spaces[i], x_parts[i]), Partition.equal(spaces[i], 2))
                for i in range(2)]
        rids = [planner.add_rhs_vector((spaces[i], np.zeros(n)), Partition.equal(spaces[i], 2))
                for i in range(2)]
        for (i, j), B in blocks.items():
            planner.add_operator(
                CSRMatrix.from_scipy(B, domain_space=spaces[j], range_space=spaces[i]),
                sids[j], rids[i],
            )
        out = planner.allocate_workspace_vector()
        planner.matmul(out, SOL)
        result = planner.get_array(out)
        expected = np.concatenate([
            blocks[(0, 0)] @ x_parts[0] + blocks[(0, 1)] @ x_parts[1],
            blocks[(1, 0)] @ x_parts[0] + blocks[(1, 1)] @ x_parts[1],
        ])
        np.testing.assert_allclose(result, expected, atol=1e-10)

    def test_aliased_operator_applies_twice(self, rng):
        """The same matrix object added twice to one pair doubles the
        product (equation (8) with two identical terms)."""
        n = 10
        A = sp.identity(n, format="csr") * 3.0
        planner = make_planner_raw()
        space = IndexSpace.linear(n)
        x = rng.normal(size=n)
        sid = planner.add_sol_vector((space, x), Partition.equal(space, 2))
        rid = planner.add_rhs_vector((space, np.zeros(n)), Partition.equal(space, 2))
        m = CSRMatrix.from_scipy(A, domain_space=space, range_space=space)
        planner.add_operator(m, sid, rid)
        planner.add_operator(m, sid, rid)
        out = planner.allocate_workspace_vector()
        planner.matmul(out, SOL)
        np.testing.assert_allclose(planner.get_array(out), 6.0 * x, atol=1e-12)
        assert planner.system.total_stored_bytes() == n * 8  # stored once
