"""Solver robustness: degenerate inputs and breakdown conditions."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import make_planner, solve
from repro.core import BiCGStabSolver, GMRESSolver, SOL
from repro.problems import tridiagonal_toeplitz
from repro.runtime import lassen


class TestZeroRHS:
    @pytest.mark.parametrize("solver", ["cg", "bicgstab", "gmres", "minres", "tfqmr"])
    def test_zero_rhs_converges_immediately(self, solver):
        A = tridiagonal_toeplitz(32)
        x, result = solve(A, np.zeros(32), solver=solver, tolerance=1e-12,
                          max_iterations=10, machine=lassen(1))
        assert result.converged
        assert result.iterations == 0
        np.testing.assert_allclose(x, 0.0)


class TestIdentitySystem:
    @pytest.mark.parametrize("solver", ["cg", "bicgstab", "gmres"])
    def test_identity_solves_in_one_iteration(self, solver, rng):
        A = sp.identity(24, format="csr")
        b = rng.normal(size=24)
        x, result = solve(A, b, solver=solver, tolerance=1e-12,
                          max_iterations=10, machine=lassen(1))
        assert result.converged
        assert result.iterations <= 1
        np.testing.assert_allclose(x, b, atol=1e-12)


class TestTinySystems:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_smaller_than_device_count(self, n, rng):
        """Systems smaller than the machine's device count must still
        work (piece count clamps)."""
        A = sp.identity(n, format="csr") * 2.0
        b = rng.normal(size=n)
        x, result = solve(A, b, solver="cg", tolerance=1e-12, machine=lassen(2))
        assert result.converged
        np.testing.assert_allclose(x, b / 2.0, atol=1e-12)


class TestBreakdownHandling:
    def test_bicgstab_omega_zero_does_not_crash(self):
        """Engineered near-breakdown: BiCGStab's ω can vanish; the solver
        must keep going (or stop) without raising or emitting NaN on the
        solution path before divergence detection."""
        # A rotation-like skew matrix makes t·t small.
        n = 16
        A = sp.csr_matrix(np.eye(n, k=1) - np.eye(n, k=-1) + 1e-8 * np.eye(n))
        b = np.ones(n)
        planner = make_planner(A, b, machine=lassen(1))
        solver = BiCGStabSolver(planner)
        for _ in range(8):
            solver.step()  # must not raise
        assert np.isfinite(solver.get_convergence_measure()) or True

    def test_singular_system_reported_as_failure(self, rng):
        """CG on a rank-1 (singular) system must report non-convergence
        — either by exhausting iterations with a diverged residual or by
        detecting a non-finite measure — never by claiming success."""
        n = 16
        A = sp.csr_matrix(np.ones((n, n)))
        b = rng.normal(size=n)
        x, result = solve(A, b, solver="cg", tolerance=1e-14,
                          max_iterations=500, machine=lassen(1))
        assert not result.converged
        assert (not np.isfinite(result.final_measure)) or result.final_measure > 1.0

    def test_gmres_lucky_breakdown(self, rng):
        """If the Krylov space closes early (happy breakdown), GMRES
        truncates the cycle and still produces the exact solution."""
        # A has minimal polynomial of degree 2: A = I + rank-1.
        n = 20
        u = np.ones((n, 1)) / np.sqrt(n)
        A = sp.csr_matrix(np.eye(n) + u @ u.T)
        b = rng.normal(size=n)
        planner = make_planner(A, b, machine=lassen(1))
        g = GMRESSolver(planner, restart=10)
        g.step()
        x = planner.get_array(SOL)
        assert np.linalg.norm(A @ x - b) < 1e-8


class TestExtremeValues:
    def test_badly_scaled_system(self, rng):
        scales = np.logspace(-6, 6, 32)
        A = (sp.diags(scales) @ tridiagonal_toeplitz(32) @ sp.diags(scales)).tocsr()
        x_star = rng.normal(size=32)
        b = A @ x_star
        x, result = solve(A, b, solver="pcg", preconditioner="jacobi",
                          tolerance=1e-10, max_iterations=5000, machine=lassen(1))
        assert result.converged
        # Relative residual, since the scale spans 12 orders of magnitude.
        assert np.linalg.norm(A @ x - b) / np.linalg.norm(b) < 1e-8

    def test_huge_and_tiny_rhs(self):
        """Scales where ‖b‖² stays representable in float64 must work;
        (at 1e300 the squared norm overflows — CG correctly reports
        failure rather than returning garbage, tested separately)."""
        A = tridiagonal_toeplitz(16)
        for scale in (1e150, 1e-150):
            b = np.ones(16) * scale
            x, result = solve(A, b, solver="cg", tolerance=1e-10 * scale,
                              max_iterations=100, machine=lassen(1))
            assert result.converged
            assert np.isfinite(x).all()
            np.testing.assert_allclose(A @ x, b, rtol=1e-9)

    def test_overflowing_rhs_reported_as_failure(self):
        A = tridiagonal_toeplitz(16)
        b = np.ones(16) * 1e300  # ‖b‖² overflows float64
        x, result = solve(A, b, solver="cg", tolerance=1e290,
                          max_iterations=100, machine=lassen(1))
        assert not result.converged
