"""The §6.3 load-balancing actors: background load and the thermodynamic
giveaway policy."""

import numpy as np
import pytest

from repro.core.loadbalance import (
    BackgroundLoad,
    ThermodynamicLoadBalancer,
    TileOwnership,
)
from repro.runtime import Machine, TableMapper


@pytest.fixture
def machine():
    return Machine(n_nodes=4, gpus_per_node=0)


class TestBackgroundLoad:
    def test_randomize_within_core_bounds(self, machine):
        load = BackgroundLoad(machine, seed=0)
        for _ in range(5):
            occ = load.randomize()
            assert (occ >= 0).all() and (occ < machine.cpu_cores_per_node).all()
            for node in range(4):
                expected = (machine.cpu_cores_per_node - occ[node]) / machine.cpu_cores_per_node
                assert machine.cpu(node).throughput_scale == pytest.approx(expected)

    def test_deterministic_with_seed(self, machine):
        a = BackgroundLoad(machine, seed=7).randomize()
        b = BackgroundLoad(machine, seed=7).randomize()
        np.testing.assert_array_equal(a, b)

    def test_average_and_clear(self, machine):
        load = BackgroundLoad(machine, seed=0)
        load.set_average()
        assert machine.cpu(0).throughput_scale == pytest.approx(0.5)
        load.clear()
        assert machine.cpu(0).throughput_scale == 1.0


class TestTileOwnership:
    def test_flip_alternates(self):
        t = TileOwnership(key=1, device_a=3, device_b=7)
        assert t.current == 3 and t.other == 7
        t.flip()
        assert t.current == 7 and t.other == 3
        t.flip()
        assert t.current == 3


class TestThermodynamicPolicy:
    def make_balancer(self, machine, beta=1.0, t_ref=1.0, seed=0, n_tiles=20):
        mapper = TableMapper(machine, {})
        tiles = [
            TileOwnership(
                key=100 + i,
                device_a=machine.cpu(i % 4).device_id,
                device_b=machine.cpu((i + 1) % 4).device_id,
            )
            for i in range(n_tiles)
        ]
        lb = ThermodynamicLoadBalancer(
            machine, mapper, tiles, t_reference=t_ref, beta_per_ms=beta, seed=seed
        )
        return lb, mapper, tiles

    def test_initial_table_populated(self, machine):
        lb, mapper, tiles = self.make_balancer(machine)
        for t in tiles:
            assert mapper.table[t.key] == t.current

    def test_no_moves_when_under_reference(self, machine):
        lb, _, _ = self.make_balancer(machine)
        moved = lb.rebalance(np.full(4, 0.5))  # everyone under T0 = 1.0
        assert moved == 0

    def test_overloaded_node_sheds_everything_at_high_beta(self, machine):
        lb, mapper, tiles = self.make_balancer(machine, beta=1e6)
        times = np.full(4, 0.5)
        times[0] = 10.0  # node 0 massively overloaded
        moved = lb.rebalance(times)
        node0_tiles = [t for t in tiles if machine.device(t.current).node == 0]
        # Every tile that *was* on node 0 moved to its alternate.
        assert moved > 0
        assert not node0_tiles
        # And the mapper table reflects the migrations.
        for t in tiles:
            assert mapper.table[t.key] == t.current

    def test_zero_beta_never_moves(self, machine):
        lb, _, _ = self.make_balancer(machine, beta=0.0)
        assert lb.rebalance(np.full(4, 100.0)) == 0

    def test_probability_increases_with_overload(self, machine):
        """Statistically: hotter nodes shed more tiles."""
        total_hot, total_warm = 0, 0
        for seed in range(20):
            lb, _, _ = self.make_balancer(machine, beta=0.3, seed=seed, n_tiles=40)
            times = np.array([4.0, 1.2, 0.5, 0.5])  # node0 hot, node1 warm
            before_hot = sum(
                1 for t in lb.tiles if machine.device(t.current).node == 0
            )
            lb.rebalance(times)
            after_hot = sum(
                1 for t in lb.tiles if machine.device(t.current).node == 0
            )
            total_hot += before_hot - after_hot
            # count moves out of node 1 similarly
        assert total_hot > 0

    def test_migration_counter_accumulates(self, machine):
        lb, _, _ = self.make_balancer(machine, beta=1e6)
        times = np.full(4, 10.0)
        m1 = lb.rebalance(times)
        m2 = lb.rebalance(times)
        assert lb.migrations == m1 + m2

    def test_owner_nodes_diagnostic(self, machine):
        lb, _, tiles = self.make_balancer(machine)
        counts = lb.owner_nodes()
        assert sum(counts.values()) == len(tiles)
