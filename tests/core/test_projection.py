"""Universal co-partitioning operators (§3.1) and equation (5)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.projection import (
    col_D_to_K,
    col_K_to_D,
    matvec_copartition,
    power_copartition,
    row_K_to_R,
    row_R_to_K,
)
from repro.runtime import IndexSpace, Partition
from repro.sparse import ALL_FORMATS, COOMatrix, CSRMatrix, to_csr

FORMAT_IDS = [name for name, _ in ALL_FORMATS]


@pytest.fixture
def matrix(rng):
    A = sp.random(16, 16, density=0.2, random_state=np.random.default_rng(33), format="csr")
    A.data[:] = rng.normal(size=A.nnz)
    A = A + sp.identity(16)
    return CSRMatrix.from_scipy(A.tocsr())


class TestNamedProjections:
    def test_row_R_to_K_collects_contributing_entries(self, matrix):
        P = Partition.equal(matrix.range_space, 4)
        KP = row_R_to_K(matrix, P)
        # Every entry of piece c has its row in P[c]: verified by triplets.
        for c in range(4):
            rows, _, _ = matrix.triplets(KP[c].indices)
            assert set(rows).issubset(set(P[c].indices))
        # Together the pieces cover all stored entries (rows complete).
        assert sum(p.volume for p in KP) == matrix.nnz

    def test_col_K_to_D_collects_read_entries(self, matrix):
        P = Partition.equal(matrix.range_space, 4)
        KP = row_R_to_K(matrix, P)
        DP = col_K_to_D(matrix, KP)
        for c in range(4):
            _, cols, _ = matrix.triplets(KP[c].indices)
            assert set(cols) == set(DP[c].indices)

    def test_col_D_to_K_and_row_K_to_R(self, matrix):
        Q = Partition.equal(matrix.domain_space, 4)
        KP = col_D_to_K(matrix, Q)
        RP = row_K_to_R(matrix, KP)
        for c in range(4):
            rows, cols, _ = matrix.triplets(KP[c].indices)
            assert set(cols).issubset(set(Q[c].indices))
            assert set(rows) == set(RP[c].indices)

    def test_wrong_space_rejected(self, matrix):
        other = Partition.equal(IndexSpace.linear(16), 2)
        with pytest.raises(ValueError):
            row_R_to_K(matrix, other)
        with pytest.raises(ValueError):
            col_D_to_K(matrix, other)
        with pytest.raises(ValueError):
            col_K_to_D(matrix, other)
        with pytest.raises(ValueError):
            row_K_to_R(matrix, other)


class TestMatvecCopartition:
    @pytest.mark.parametrize(("name", "convert"), ALL_FORMATS, ids=FORMAT_IDS)
    def test_pieces_compute_matvec_independently(self, name, convert, rng):
        """The §3.1 guarantee: y piece c depends only on matrix piece c
        and input piece c — for every storage format."""
        A = sp.random(8, 8, density=0.4, random_state=np.random.default_rng(5), format="csr")
        A.data[:] = rng.normal(size=A.nnz)
        m = convert(COOMatrix.from_scipy(A.tocsr()))
        x = rng.normal(size=8)
        P = Partition.equal(m.range_space, 3)
        KP, DP = matvec_copartition(m, P)
        y = np.zeros(8)
        for c in range(3):
            rows, cols, vals = m.triplets(KP[c].indices)
            # Inputs are available within DP[c]:
            assert set(cols).issubset(set(DP[c].indices))
            np.add.at(y, rows, vals * x[cols])
        np.testing.assert_allclose(y, A @ x, atol=1e-10)

    def test_finest_property(self, matrix):
        """DP[c] is exactly the set of inputs piece c reads — nothing
        extra (the 'finest partition' claim)."""
        P = Partition.equal(matrix.range_space, 4)
        KP, DP = matvec_copartition(matrix, P)
        for c in range(4):
            _, cols, _ = matrix.triplets(KP[c].indices)
            assert set(DP[c].indices) == set(cols)


class TestPowerCopartition:
    def test_eq5_supports_matrix_power(self, matrix, rng):
        """Equation (5): the p-th partition provides every input needed
        to compute A^p x piecewise."""
        P = Partition.equal(matrix.range_space, 4)
        parts = power_copartition(matrix, P, power=2)
        assert len(parts) == 2
        dense = matrix.to_dense()
        # Compute (A²x) piece by piece using only the declared inputs.
        A2 = dense @ dense
        for c in range(4):
            needed_for_piece = np.flatnonzero(np.abs(A2[P[c].indices, :]).sum(axis=0))
            assert set(needed_for_piece).issubset(set(parts[1][c].indices))

    def test_partitions_nest(self, matrix):
        """Each successive power needs at least the previous inputs."""
        P = Partition.equal(matrix.range_space, 4)
        parts = power_copartition(matrix, P, power=3)
        for c in range(4):
            assert set(parts[0][c].indices).issubset(set(parts[1][c].indices))
            assert set(parts[1][c].indices).issubset(set(parts[2][c].indices))

    def test_requires_square(self, rng):
        A = sp.random(4, 6, density=0.5, random_state=np.random.default_rng(1))
        m = to_csr(COOMatrix.from_scipy(A.tocsr()))
        with pytest.raises(ValueError):
            power_copartition(m, Partition.equal(m.range_space, 2), 2)

    def test_power_validated(self, matrix):
        with pytest.raises(ValueError):
            power_copartition(matrix, Partition.equal(matrix.range_space, 2), 0)


@pytest.mark.parametrize(("name", "convert"), ALL_FORMATS, ids=FORMAT_IDS)
def test_copartitioning_is_format_independent(name, convert, rng):
    """The same range partition induces, for every format of the same
    matrix, kernel pieces covering the same logical entries — the
    universality claim of P2/P3."""
    A = sp.random(10, 10, density=0.3, random_state=np.random.default_rng(8), format="csr")
    A.data[:] = rng.normal(size=A.nnz)
    base = COOMatrix.from_scipy(A.tocsr())
    m = convert(base)
    P = Partition.equal(m.range_space, 2)
    KP = row_R_to_K(m, P)
    for c in range(2):
        rows, cols, vals = m.triplets(KP[c].indices)
        dense_piece = np.zeros((10, 10))
        np.add.at(dense_piece, (rows, cols), vals)
        expected = np.zeros((10, 10))
        expected[P[c].indices] = A.toarray()[P[c].indices]
        np.testing.assert_allclose(dense_piece, expected, atol=1e-12, err_msg=name)


class TestSeededRoundTripProperties:
    """Property-style seeded checks: image(preimage(P)) refines P, and
    derived K/D/R partitions cover their spaces exactly — for random
    matrices and random (non-contiguous) partitions."""

    def _random_case(self, seed, n=14):
        rng = np.random.default_rng(seed)
        A = sp.random(n, n, density=0.25, random_state=rng, format="csr")
        A = (A + sp.identity(n)).tocsr()
        A.data[:] = rng.normal(size=A.nnz)
        m = CSRMatrix.from_scipy(A)
        colors = rng.integers(0, 4, size=n)
        P = Partition.by_field(m.range_space, colors, n_colors=4)
        return m, P

    @pytest.mark.parametrize("seed", range(8))
    def test_image_of_preimage_refines(self, seed):
        m, P = self._random_case(seed)
        KP = row_R_to_K(m, P)
        back = row_K_to_R(m, KP)
        for c, (orig, rt) in enumerate(zip(P, back)):
            assert set(rt.indices).issubset(set(orig.indices)), (seed, c)

    @pytest.mark.parametrize("seed", range(8))
    def test_derived_kernel_partition_covers_exactly(self, seed):
        m, P = self._random_case(seed)
        KP = row_R_to_K(m, P)
        covered = np.unique(np.concatenate([p.indices for p in KP]))
        # Rows partition is complete and every entry has a row, so the
        # derived kernel pieces cover every stored entry exactly once
        # (rows are disjoint, so preimages of a functional relation are).
        assert np.array_equal(covered, np.arange(m.kernel_space.volume))
        assert sum(p.volume for p in KP) == m.kernel_space.volume

    @pytest.mark.parametrize("seed", range(8))
    def test_derived_domain_partition_covers_reads_exactly(self, seed):
        m, P = self._random_case(seed)
        KP, DP = matvec_copartition(m, P)
        for c, (kp, dp) in enumerate(zip(KP, DP)):
            _, cols, _ = m.triplets(kp.indices)
            assert set(dp.indices) == set(cols), (seed, c)

    @pytest.mark.parametrize("seed", range(4))
    def test_domain_roundtrip_refines(self, seed):
        """The dual round trip: col_K_to_D[col_D_to_K[Q]] refines Q."""
        m, _ = self._random_case(seed)
        rng = np.random.default_rng(seed + 100)
        colors = rng.integers(0, 3, size=m.domain_space.volume)
        Q = Partition.by_field(m.domain_space, colors, n_colors=3)
        KP = col_D_to_K(m, Q)
        back = col_K_to_D(m, KP)
        for c, (orig, rt) in enumerate(zip(Q, back)):
            assert set(rt.indices).issubset(set(orig.indices)), (seed, c)

    @pytest.mark.parametrize("seed", range(4))
    def test_verify_invariants_hold_for_random_formats(self, seed):
        """Hook the seeded cases into the verification subsystem's
        co-partition checker across the whole format zoo."""
        from repro.verify import check_copartition

        rng = np.random.default_rng(seed)
        n = 12
        A = sp.random(n, n, density=0.3, random_state=rng, format="csr")
        A = (A + sp.identity(n)).tocsr()
        base = COOMatrix.from_scipy(A)
        for name, convert in ALL_FORMATS:
            assert check_copartition(convert(base), 3, name) == [], (seed, name)
