"""Universal co-partitioning operators (§3.1) and equation (5)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.projection import (
    col_D_to_K,
    col_K_to_D,
    matvec_copartition,
    power_copartition,
    row_K_to_R,
    row_R_to_K,
)
from repro.runtime import IndexSpace, Partition
from repro.sparse import ALL_FORMATS, COOMatrix, CSRMatrix, to_csr

FORMAT_IDS = [name for name, _ in ALL_FORMATS]


@pytest.fixture
def matrix(rng):
    A = sp.random(16, 16, density=0.2, random_state=np.random.default_rng(33), format="csr")
    A.data[:] = rng.normal(size=A.nnz)
    A = A + sp.identity(16)
    return CSRMatrix.from_scipy(A.tocsr())


class TestNamedProjections:
    def test_row_R_to_K_collects_contributing_entries(self, matrix):
        P = Partition.equal(matrix.range_space, 4)
        KP = row_R_to_K(matrix, P)
        # Every entry of piece c has its row in P[c]: verified by triplets.
        for c in range(4):
            rows, _, _ = matrix.triplets(KP[c].indices)
            assert set(rows).issubset(set(P[c].indices))
        # Together the pieces cover all stored entries (rows complete).
        assert sum(p.volume for p in KP) == matrix.nnz

    def test_col_K_to_D_collects_read_entries(self, matrix):
        P = Partition.equal(matrix.range_space, 4)
        KP = row_R_to_K(matrix, P)
        DP = col_K_to_D(matrix, KP)
        for c in range(4):
            _, cols, _ = matrix.triplets(KP[c].indices)
            assert set(cols) == set(DP[c].indices)

    def test_col_D_to_K_and_row_K_to_R(self, matrix):
        Q = Partition.equal(matrix.domain_space, 4)
        KP = col_D_to_K(matrix, Q)
        RP = row_K_to_R(matrix, KP)
        for c in range(4):
            rows, cols, _ = matrix.triplets(KP[c].indices)
            assert set(cols).issubset(set(Q[c].indices))
            assert set(rows) == set(RP[c].indices)

    def test_wrong_space_rejected(self, matrix):
        other = Partition.equal(IndexSpace.linear(16), 2)
        with pytest.raises(ValueError):
            row_R_to_K(matrix, other)
        with pytest.raises(ValueError):
            col_D_to_K(matrix, other)
        with pytest.raises(ValueError):
            col_K_to_D(matrix, other)
        with pytest.raises(ValueError):
            row_K_to_R(matrix, other)


class TestMatvecCopartition:
    @pytest.mark.parametrize(("name", "convert"), ALL_FORMATS, ids=FORMAT_IDS)
    def test_pieces_compute_matvec_independently(self, name, convert, rng):
        """The §3.1 guarantee: y piece c depends only on matrix piece c
        and input piece c — for every storage format."""
        A = sp.random(8, 8, density=0.4, random_state=np.random.default_rng(5), format="csr")
        A.data[:] = rng.normal(size=A.nnz)
        m = convert(COOMatrix.from_scipy(A.tocsr()))
        x = rng.normal(size=8)
        P = Partition.equal(m.range_space, 3)
        KP, DP = matvec_copartition(m, P)
        y = np.zeros(8)
        for c in range(3):
            rows, cols, vals = m.triplets(KP[c].indices)
            # Inputs are available within DP[c]:
            assert set(cols).issubset(set(DP[c].indices))
            np.add.at(y, rows, vals * x[cols])
        np.testing.assert_allclose(y, A @ x, atol=1e-10)

    def test_finest_property(self, matrix):
        """DP[c] is exactly the set of inputs piece c reads — nothing
        extra (the 'finest partition' claim)."""
        P = Partition.equal(matrix.range_space, 4)
        KP, DP = matvec_copartition(matrix, P)
        for c in range(4):
            _, cols, _ = matrix.triplets(KP[c].indices)
            assert set(DP[c].indices) == set(cols)


class TestPowerCopartition:
    def test_eq5_supports_matrix_power(self, matrix, rng):
        """Equation (5): the p-th partition provides every input needed
        to compute A^p x piecewise."""
        x = rng.normal(size=16)
        P = Partition.equal(matrix.range_space, 4)
        parts = power_copartition(matrix, P, power=2)
        assert len(parts) == 2
        dense = matrix.to_dense()
        # Compute (A²x) piece by piece using only the declared inputs.
        A2 = dense @ dense
        for c in range(4):
            needed_for_piece = np.flatnonzero(np.abs(A2[P[c].indices, :]).sum(axis=0))
            assert set(needed_for_piece).issubset(set(parts[1][c].indices))

    def test_partitions_nest(self, matrix):
        """Each successive power needs at least the previous inputs."""
        P = Partition.equal(matrix.range_space, 4)
        parts = power_copartition(matrix, P, power=3)
        for c in range(4):
            assert set(parts[0][c].indices).issubset(set(parts[1][c].indices))
            assert set(parts[1][c].indices).issubset(set(parts[2][c].indices))

    def test_requires_square(self, rng):
        A = sp.random(4, 6, density=0.5, random_state=np.random.default_rng(1))
        m = to_csr(COOMatrix.from_scipy(A.tocsr()))
        with pytest.raises(ValueError):
            power_copartition(m, Partition.equal(m.range_space, 2), 2)

    def test_power_validated(self, matrix):
        with pytest.raises(ValueError):
            power_copartition(matrix, Partition.equal(matrix.range_space, 2), 0)


@pytest.mark.parametrize(("name", "convert"), ALL_FORMATS, ids=FORMAT_IDS)
def test_copartitioning_is_format_independent(name, convert, rng):
    """The same range partition induces, for every format of the same
    matrix, kernel pieces covering the same logical entries — the
    universality claim of P2/P3."""
    A = sp.random(10, 10, density=0.3, random_state=np.random.default_rng(8), format="csr")
    A.data[:] = rng.normal(size=A.nnz)
    base = COOMatrix.from_scipy(A.tocsr())
    m = convert(base)
    P = Partition.equal(m.range_space, 2)
    KP = row_R_to_K(m, P)
    for c in range(2):
        rows, cols, vals = m.triplets(KP[c].indices)
        dense_piece = np.zeros((10, 10))
        np.add.at(dense_piece, (rows, cols), vals)
        expected = np.zeros((10, 10))
        expected[P[c].indices] = A.toarray()[P[c].indices]
        np.testing.assert_allclose(dense_piece, expected, atol=1e-12, err_msg=name)
