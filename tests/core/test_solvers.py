"""Solver correctness across the stock KSM zoo."""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.api import make_planner, solve
from repro.core import (
    SOL,
    BiCGSolver,
    CGSolver,
    CGSSolver,
    GMRESSolver,
    KrylovSolver,
    MINRESSolver,
    PCGSolver,
    SOLVER_REGISTRY,
)
from repro.problems import (
    convection_diffusion_2d,
    random_diag_dominant,
    symmetric_indefinite,
    system_with_solution,
    tridiagonal_toeplitz,
)
from repro.runtime import lassen

SPD_SOLVERS = ["cg", "bicg", "bicgstab", "cgs", "gmres", "minres", "tfqmr", "cgnr"]
NONSYM_SOLVERS = ["bicg", "bicgstab", "cgs", "gmres", "tfqmr", "cgnr"]


def run(A, b, solver, x0=None, tol=1e-10, max_it=6000):
    x, result = solve(
        A, b, x0=x0, solver=solver, tolerance=tol, max_iterations=max_it,
        machine=lassen(2),
    )
    return x, result


class TestSPDSystems:
    @pytest.mark.parametrize("solver", SPD_SOLVERS)
    def test_solves_laplacian(self, solver, rng):
        A, b, x_star = system_with_solution(tridiagonal_toeplitz(96), seed=1)
        x, result = run(A, b, solver)
        assert result.converged
        assert np.linalg.norm(x - x_star) / np.linalg.norm(x_star) < 1e-6

    @pytest.mark.parametrize("solver", ["cg", "minres", "bicgstab"])
    def test_nonzero_initial_guess(self, solver, rng):
        A, b, x_star = system_with_solution(tridiagonal_toeplitz(64), seed=2)
        x0 = rng.normal(size=64)
        x, result = run(A, b, solver, x0=x0)
        assert result.converged
        assert np.linalg.norm(A @ x - b) < 1e-8

    @pytest.mark.parametrize("solver", ["cg", "minres"])
    def test_exact_initial_guess_converges_immediately(self, solver):
        A, b, x_star = system_with_solution(tridiagonal_toeplitz(32), seed=3)
        x, result = run(A, b, solver, x0=x_star.copy())
        assert result.converged
        assert result.iterations == 0


class TestNonsymmetricSystems:
    @pytest.mark.parametrize("solver", NONSYM_SOLVERS)
    def test_convection_diffusion(self, solver, rng):
        A = convection_diffusion_2d((10, 10))
        assert (abs(A - A.T)).nnz > 0  # genuinely nonsymmetric
        b = rng.normal(size=100)
        x, result = run(A, b, solver, tol=1e-9)
        assert result.converged
        assert np.linalg.norm(A @ x - b) < 1e-7

    @pytest.mark.parametrize("solver", NONSYM_SOLVERS)
    def test_diag_dominant(self, solver, rng):
        A = random_diag_dominant(80, density=0.1, seed=4)
        b = rng.normal(size=80)
        x, result = run(A, b, solver)
        assert result.converged


class TestIndefiniteSystems:
    def test_minres_handles_indefinite(self, rng):
        A = symmetric_indefinite(60, seed=5)
        eigs = np.linalg.eigvalsh(A.toarray())
        assert eigs.min() < 0 < eigs.max()
        b = rng.normal(size=60)
        x, result = run(A, b, "minres", tol=1e-8)
        assert result.converged
        assert np.linalg.norm(A @ x - b) < 1e-6


class TestConvergenceBehaviour:
    def test_cg_iteration_count_matches_theory(self):
        """Unpreconditioned CG on tridiag(−1,2,−1) reaches machine-level
        residual in at most n iterations (Krylov exactness)."""
        n = 48
        A, b, _ = system_with_solution(tridiagonal_toeplitz(n), seed=6)
        _, result = run(A, b, "cg", tol=1e-10)
        assert result.iterations <= n + 1

    def test_cg_monotone_energy_residual_history(self):
        A, b, _ = system_with_solution(tridiagonal_toeplitz(48), seed=7)
        _, result = run(A, b, "cg", tol=1e-12)
        hist = np.asarray(result.measure_history)
        # CG residuals oscillate in 2-norm but the trend is downward;
        # check a robust proxy: the running minimum strictly decreases
        # over ten-iteration windows.
        mins = [hist[: i + 1].min() for i in range(len(hist))]
        assert mins[-1] < mins[0]

    def test_gmres_cycle_residual_nonincreasing(self, rng):
        A = convection_diffusion_2d((8, 8))
        b = rng.normal(size=64)
        planner = make_planner(A, b, machine=lassen(1))
        g = GMRESSolver(planner, restart=5)
        prev = float("inf")
        for _ in range(6):
            g.step()
            assert g.get_convergence_measure() <= prev + 1e-12
            prev = g.get_convergence_measure()

    def test_gmres_restart_validated(self, spd_system):
        A, b, _ = spd_system
        planner = make_planner(A, b, machine=lassen(1))
        with pytest.raises(ValueError):
            GMRESSolver(planner, restart=0)

    def test_run_fixed_executes_exact_count(self, spd_system):
        A, b, _ = spd_system
        planner = make_planner(A, b, machine=lassen(1))
        ksm = CGSolver(planner)
        res = ksm.run_fixed(17)
        assert res.iterations == 17
        assert len(res.sim_time_marks) == 18
        assert res.iteration_times.shape == (17,)

    def test_tracing_does_not_change_numerics(self, spd_system):
        A, b, _ = spd_system
        xs = []
        for tracing in (True, False):
            planner = make_planner(A, b, machine=lassen(1))
            ksm = CGSolver(planner)
            ksm.solve(tolerance=1e-10, max_iterations=500, use_tracing=tracing)
            xs.append(planner.get_array(SOL))
        np.testing.assert_allclose(xs[0], xs[1], atol=1e-12)

    def test_callback_invoked(self, spd_system):
        A, b, _ = spd_system
        planner = make_planner(A, b, machine=lassen(1))
        seen = []
        CGSolver(planner).solve(
            tolerance=1e-10, max_iterations=10,
            callback=lambda s, it, m: seen.append((it, m)),
        )
        assert len(seen) == 10
        assert seen[0][0] == 1


class TestSolverContracts:
    def test_registry_complete(self):
        assert set(SOLVER_REGISTRY) == {
            "cg", "pcg", "bicg", "bicgstab", "cgs", "gmres", "minres",
            "tfqmr", "cgnr",
        }
        for cls in SOLVER_REGISTRY.values():
            assert issubclass(cls, KrylovSolver)

    def test_cg_asserts_no_preconditioner(self, spd_system):
        A, b, _ = spd_system
        planner = make_planner(A, b, machine=lassen(1), preconditioner="jacobi")
        with pytest.raises(AssertionError):
            CGSolver(planner)

    def test_pcg_requires_preconditioner(self, spd_system):
        A, b, _ = spd_system
        planner = make_planner(A, b, machine=lassen(1))
        with pytest.raises(AssertionError):
            PCGSolver(planner)

    @pytest.mark.parametrize("cls", [CGSolver, MINRESSolver, BiCGSolver, CGSSolver])
    def test_square_asserted(self, cls, rng):
        A = sp.random(6, 8, density=0.5, random_state=np.random.default_rng(0), format="csr")
        planner = make_planner(A, np.ones(6), x0=np.zeros(8), machine=lassen(1))
        with pytest.raises(AssertionError):
            cls(planner)

    def test_all_match_scipy_reference(self, rng):
        """Cross-validate against scipy.sparse.linalg on one system."""
        A = random_diag_dominant(60, density=0.15, seed=8, symmetric=True)
        b = rng.normal(size=60)
        x_ref = spla.spsolve(A.tocsc(), b)
        for name in ("cg", "bicgstab", "gmres"):
            x, result = run(A, b, name, tol=1e-12)
            assert np.linalg.norm(x - x_ref) / np.linalg.norm(x_ref) < 1e-8, name
