"""Scalars (future-backed arithmetic) and multi-component vectors."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.scalar import Scalar, as_scalar
from repro.core.vectors import VALUE_FIELD, MultiVector, VectorComponent
from repro.runtime import Future, IndexSpace, Partition


class TestScalar:
    def test_arithmetic(self):
        a, b = Scalar(6.0), Scalar(3.0)
        assert (a + b).value == 9.0
        assert (a - b).value == 3.0
        assert (a * b).value == 18.0
        assert (a / b).value == 2.0
        assert (-a).value == -6.0
        assert a.sqrt().value == pytest.approx(math.sqrt(6.0))

    def test_mixed_with_floats(self):
        a = Scalar(2.0)
        assert (a + 1).value == 3.0
        assert (1 + a).value == 3.0
        assert (10 - a).value == 8.0
        assert (3 * a).value == 6.0
        assert (8 / a).value == 4.0

    def test_comparisons(self):
        assert Scalar(1.0) < Scalar(2.0)
        assert Scalar(2.0) >= 2.0
        assert float(Scalar(2.5)) == 2.5

    def test_dependency_union(self):
        f1, f2 = Future.from_value(1.0), Future.from_value(2.0)
        a = Scalar.from_future(f1)
        b = Scalar.from_future(f2)
        c = a / b + 1.0
        dep_uids = {f.uid for f in c.future_deps}
        assert dep_uids == {f1.uid, f2.uid}

    def test_neg_preserves_deps(self):
        f = Future.from_value(3.0)
        assert (-Scalar.from_future(f)).future_deps[0] is f

    def test_as_scalar(self):
        s = Scalar(1.0)
        assert as_scalar(s) is s
        assert as_scalar(2).value == 2.0

    @given(x=st.floats(-100, 100), y=st.floats(0.1, 100))
    def test_matches_float_arithmetic(self, x, y):
        sx, sy = Scalar(x), Scalar(y)
        assert (sx / sy).value == pytest.approx(x / y)
        assert (sx * sy + sx).value == pytest.approx(x * y + x)


class TestVectorComponent:
    def test_attach_in_place(self, runtime):
        space = IndexSpace.linear(8)
        data = np.arange(8, dtype=np.float64)
        comp = VectorComponent(runtime, space, data=data)
        runtime.store.raw(comp.region, VALUE_FIELD)[0] = 42.0
        assert data[0] == 42.0

    def test_default_partition_single_piece(self, runtime):
        comp = VectorComponent(runtime, IndexSpace.linear(8))
        assert comp.n_pieces == 1

    def test_canonical_partition_validated(self, runtime):
        from repro.runtime import Subset

        space = IndexSpace.linear(8)
        incomplete = Partition.from_subsets(space, [Subset.interval(space, 0, 3)])
        with pytest.raises(ValueError):
            VectorComponent(runtime, space, incomplete)
        other = IndexSpace.linear(8)
        with pytest.raises(ValueError):
            VectorComponent(runtime, space, Partition.equal(other, 2))


class TestMultiVector:
    def make(self, runtime, sizes, pieces):
        comps = []
        for s, p in zip(sizes, pieces):
            space = IndexSpace.linear(s)
            comps.append(VectorComponent(runtime, space, Partition.equal(space, p)))
        return MultiVector(comps)

    def test_piece_offsets_accumulate(self, runtime):
        mv = self.make(runtime, [10, 20, 30], [2, 3, 1])
        assert [c.piece_offset for c in mv.components] == [0, 2, 5]
        assert mv.total_pieces == 6
        assert mv.total_volume == 60
        assert mv.shape_signature() == (10, 20, 30)

    def test_round_trip_arrays(self, runtime, rng):
        mv = self.make(runtime, [5, 7], [1, 1])
        values = rng.normal(size=12)
        mv.set_array(runtime.store, values)
        np.testing.assert_array_equal(mv.to_array(runtime.store), values)

    def test_set_array_length_checked(self, runtime):
        mv = self.make(runtime, [5], [1])
        with pytest.raises(ValueError):
            mv.set_array(runtime.store, np.zeros(6))

    def test_like_shares_spaces_and_partitions(self, runtime):
        mv = self.make(runtime, [8, 8], [2, 2])
        ws = mv.like(runtime)
        for a, b in zip(mv.components, ws.components):
            assert a.space is b.space
            assert a.partition is b.partition
            assert a.region is not b.region
        assert (ws.to_array(runtime.store) == 0).all()

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiVector([])
