"""P3 executable: changing the partitioning strategy changes *nothing*
in user or solver code — only the data movement profile.

The paper: "dependent partitioning enables KDRSolvers to automatically
propagate these partitions through both user and library code, enabling
developers to change partitioning strategies without modifying their
code."  Here the *same* program runs under four canonical partitions;
the numerics are bit-for-bit identical while the simulated communication
varies exactly as the partition geometry predicts.
"""

import numpy as np
import pytest

from repro.core import CGSolver, Planner, SOL
from repro.problems import laplacian_scipy
from repro.runtime import (
    IndexSpace,
    Partition,
    Runtime,
    ShardedMapper,
    lassen,
)
from repro.sparse import CSRMatrix


def solve_with_partition(make_partition, rng_seed=0, side=32, iters=40):
    """The user program: identical regardless of partitioning strategy."""
    machine = lassen(2)
    runtime = Runtime(machine=machine, mapper=ShardedMapper(machine))
    planner = Planner(runtime)
    n = side * side
    A = laplacian_scipy("2d5", (side, side))
    space = IndexSpace.linear(n, name="D")
    part = make_partition(space)
    rng = np.random.default_rng(rng_seed)
    b = rng.random(n)
    sid = planner.add_sol_vector((space, np.zeros(n)), part)
    rid = planner.add_rhs_vector((space, b), part)
    planner.add_operator(
        CSRMatrix.from_scipy(A, domain_space=space, range_space=space), sid, rid
    )
    solver = CGSolver(planner)
    solver.run_fixed(iters)
    return planner.get_array(SOL), runtime.engine.total_comm_bytes, runtime.sim_time


PARTITIONS = {
    "blocks-8": lambda s: Partition.equal(s, 8),
    "blocks-4": lambda s: Partition.equal(s, 4),
    "round-robin-8": lambda s: Partition.by_field(
        s, np.arange(s.volume) % 8, n_colors=8
    ),
    "single-piece": lambda s: Partition.equal(s, 1),
}


class TestRepartitioning:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            name: solve_with_partition(make)
            for name, make in PARTITIONS.items()
        }

    def test_numerics_identical_across_strategies(self, results):
        baseline = results["blocks-8"][0]
        for name, (x, _, _) in results.items():
            np.testing.assert_allclose(x, baseline, atol=1e-12, err_msg=name)

    def test_communication_tracks_partition_geometry(self, results):
        """Contiguous blocks exchange only stencil halos; a round-robin
        (cyclic) partition makes nearly every stencil neighbour remote —
        the classic pathological layout — and a single piece moves
        nothing at all."""
        comm = {name: r[1] for name, r in results.items()}
        assert comm["single-piece"] == 0
        assert comm["blocks-8"] > 0
        assert comm["round-robin-8"] > 3 * comm["blocks-8"]

    def test_pathological_comm_still_overlapped_at_small_scale(self, results):
        """At this size even the cyclic partition's 4× communication is
        fully hidden behind compute and runtime overhead — the P1
        overlap at work.  (At bandwidth-bound sizes it would surface;
        the fig8 harness covers that regime.)"""
        times = {name: r[2] for name, r in results.items()}
        assert times["round-robin-8"] <= times["blocks-8"] * 1.10

    def test_fewer_pieces_less_comm_than_more(self, results):
        comm = {name: r[1] for name, r in results.items()}
        assert comm["blocks-4"] < comm["blocks-8"]
