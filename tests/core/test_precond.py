"""Preconditioner factories (the paper's §7 future-work item)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import make_planner, solve
from repro.core import PCGSolver, BiCGStabSolver
from repro.core.precond import (
    block_jacobi_preconditioner,
    jacobi_preconditioner,
    multiop_jacobi,
    neumann_preconditioner,
    ssor_preconditioner,
)
from repro.problems import random_diag_dominant, tridiagonal_toeplitz
from repro.runtime import lassen
from repro.sparse import CSRMatrix, DIAMatrix


@pytest.fixture
def spd():
    return CSRMatrix.from_scipy(tridiagonal_toeplitz(64))


class TestJacobi:
    def test_is_inverse_diagonal(self, spd):
        P = jacobi_preconditioner(spd)
        assert isinstance(P, DIAMatrix)
        np.testing.assert_allclose(np.diag(P.to_dense()), 0.5)

    def test_zero_diagonal_rejected(self):
        A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            jacobi_preconditioner(A)

    def test_nonsquare_rejected(self):
        A = CSRMatrix.from_dense(np.ones((2, 3)))
        with pytest.raises(ValueError):
            jacobi_preconditioner(A)

    def test_pcg_converges_no_slower_than_cg(self, rng):
        """On a badly scaled SPD system, Jacobi PCG needs far fewer
        iterations than plain CG."""
        n = 64
        scales = np.logspace(0, 4, n)
        A = (sp.diags(scales) @ tridiagonal_toeplitz(n) @ sp.diags(scales)).tocsr()
        b = rng.normal(size=n)
        _, plain = solve(A, b, solver="cg", tolerance=1e-8, max_iterations=20000,
                         machine=lassen(1))
        x, pre = solve(A, b, solver="pcg", tolerance=1e-8, max_iterations=20000,
                       machine=lassen(1), preconditioner="jacobi")
        assert pre.converged
        assert pre.iterations < plain.iterations
        assert np.linalg.norm(A @ x - b) < 1e-6


class TestBlockJacobi:
    def test_inverts_diagonal_blocks(self, spd):
        P = block_jacobi_preconditioner(spd, block=4)
        dense_P = P.to_dense()
        dense_A = spd.to_dense()
        blk = dense_P[:4, :4] @ dense_A[:4, :4]
        np.testing.assert_allclose(blk, np.eye(4), atol=1e-12)

    def test_block_must_divide(self, spd):
        with pytest.raises(ValueError):
            block_jacobi_preconditioner(spd, block=5)

    def test_accelerates_pcg(self, rng):
        A = tridiagonal_toeplitz(64)
        b = rng.normal(size=64)
        planner = make_planner(
            A, b, machine=lassen(1),
            preconditioner=block_jacobi_preconditioner(CSRMatrix.from_scipy(A), block=8),
        )
        result = PCGSolver(planner).solve(tolerance=1e-9, max_iterations=2000)
        assert result.converged
        _, plain = solve(A, b, solver="cg", tolerance=1e-9, machine=lassen(1))
        assert result.iterations < plain.iterations


class TestPolynomial:
    def test_neumann_approximates_inverse(self):
        A = CSRMatrix.from_scipy(random_diag_dominant(24, density=0.2, seed=3))
        P = neumann_preconditioner(A, order=4)
        PA = P.to_dense() @ A.to_dense()
        # P A ≈ I for a convergent splitting.
        assert np.linalg.norm(PA - np.eye(24)) < 0.5
        better = neumann_preconditioner(A, order=8)
        assert (
            np.linalg.norm(better.to_dense() @ A.to_dense() - np.eye(24))
            < np.linalg.norm(PA - np.eye(24))
        )

    def test_neumann_order_validated(self, spd):
        with pytest.raises(ValueError):
            neumann_preconditioner(spd, order=-1)

    def test_ssor_accelerates_bicgstab(self, rng):
        A = random_diag_dominant(48, density=0.15, seed=11)
        b = rng.normal(size=48)
        kdr = CSRMatrix.from_scipy(A)
        planner = make_planner(
            A, b, machine=lassen(1),
            preconditioner=ssor_preconditioner(kdr, omega=1.0, order=3),
        )
        result = BiCGStabSolver(planner).solve(tolerance=1e-9, max_iterations=2000)
        assert result.converged
        _, plain = solve(A, b, solver="bicgstab", tolerance=1e-9, machine=lassen(1))
        assert result.iterations <= plain.iterations

    def test_ssor_omega_validated(self, spd):
        with pytest.raises(ValueError):
            ssor_preconditioner(spd, omega=2.5)


class TestMultiopJacobi:
    def test_diagonal_pairs_only(self, spd, rng):
        off = CSRMatrix.from_scipy(
            sp.random(64, 64, density=0.05, random_state=np.random.default_rng(5), format="csr"),
            domain_space=spd.domain_space,
            range_space=spd.range_space,
        )
        comps = [(spd, 0, 0), (off, 0, 1)]
        out = multiop_jacobi(comps)
        assert len(out) == 1
        P, i, j = out[0]
        assert (i, j) == (0, 0)
        np.testing.assert_allclose(np.diag(P.to_dense()), 0.5)

    def test_aliased_diagonals_sum(self, spd):
        out = multiop_jacobi([(spd, 0, 0), (spd, 0, 0)])
        P, _, _ = out[0]
        # Two copies of A on the diagonal pair: effective diag = 4.
        np.testing.assert_allclose(np.diag(P.to_dense()), 0.25)

    def test_zero_diag_rejected(self):
        A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            multiop_jacobi([(A, 0, 0)])
