"""Solver edge cases surfaced by the differential oracle's seed grid:
degenerate sizes, empty pieces, singular operators, restart boundaries."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import solve
from repro.core.planner import Planner
from repro.core.solvers import SOLVER_REGISTRY
from repro.core.solvers.gmres import GMRESSolver
from repro.problems.generators import tridiagonal_toeplitz
from repro.runtime import IndexSpace, Partition, Runtime, Subset
from repro.sparse.csr import CSRMatrix
from repro.verify import build_format

ALL_SOLVER_NAMES = sorted(set(SOLVER_REGISTRY) - {"pcg"})


class TestZeroRHSAcrossFormats:
    @pytest.mark.parametrize("fmt", ["csr", "coo", "ell", "dia", "bcsr", "matfree"])
    def test_zero_rhs_converges_to_zero(self, fmt):
        A = tridiagonal_toeplitz(12)
        op = build_format(fmt, A)
        x, result = solve(op, np.zeros(12), solver="cg", tolerance=1e-10)
        assert result.converged
        assert result.iterations <= 1
        np.testing.assert_array_equal(x, np.zeros(12))


class TestOneByOneSystems:
    @pytest.mark.parametrize("solver", ALL_SOLVER_NAMES)
    def test_1x1_system_solved(self, solver):
        A = sp.csr_matrix(np.array([[2.0]]))
        x, result = solve(A, np.array([3.0]), solver=solver, tolerance=1e-12,
                          max_iterations=20)
        assert result.converged
        np.testing.assert_allclose(x, [1.5], rtol=1e-10)


class TestEmptyPieces:
    def _planner_with_empty_piece(self, A, b):
        """A hand-built partition whose last piece is empty — legal for
        partitions (they are arbitrary color → subset maps) and must not
        break the planner's piece tasks."""
        n = b.size
        space = IndexSpace.linear(n, name="D")
        cut = n // 2
        part = Partition.from_subsets(space, [
            Subset.interval(space, 0, cut - 1),
            Subset.interval(space, cut, n - 1),
            Subset.empty(space),
        ])
        planner = Planner(Runtime())
        sid = planner.add_sol_vector((space, np.zeros(n)), part)
        rid = planner.add_rhs_vector((space, b), part)
        planner.add_operator(
            CSRMatrix.from_scipy(A, domain_space=space, range_space=space),
            sid, rid,
        )
        return planner

    @pytest.mark.parametrize("solver", ["cg", "bicgstab", "gmres"])
    def test_empty_piece_solve_matches_reference(self, solver):
        A = tridiagonal_toeplitz(16)
        b = np.ones(16)
        planner = self._planner_with_empty_piece(A, b)
        result = SOLVER_REGISTRY[solver](planner).solve(
            tolerance=1e-10, max_iterations=200
        )
        assert result.converged
        from repro.core.planner import SOL

        x = planner.get_array(SOL)
        np.testing.assert_allclose(A @ x, b, atol=1e-8)


class TestSingularSystems:
    def test_inconsistent_singular_system_fails_cleanly(self):
        # diag(1,...,1,0) with b outside the range: no solution exists.
        d = np.ones(12)
        d[-1] = 0.0
        A = sp.diags(d).tocsr()
        b = np.zeros(12)
        b[-1] = 1.0
        x, result = solve(A, b, solver="cg", tolerance=1e-10, max_iterations=50)
        assert not result.converged
        # Clean failure: every reported measure before any terminal
        # breakdown sentinel is finite — no silent NaN propagation.
        hist = np.asarray(result.measure_history, dtype=np.float64)
        assert hist.size > 0
        assert np.isfinite(hist[:-1]).all()

    @pytest.mark.parametrize("solver", ["cg", "bicgstab", "gmres", "tfqmr"])
    def test_ill_conditioned_system_no_nan_solution_on_failure(self, solver):
        # Condition number ~1e16: solvers may fail, but must not return
        # silent NaNs while claiming success.
        d = np.logspace(0, -16, 10)
        A = sp.diags(d).tocsr()
        b = np.ones(10)
        x, result = solve(A, b, solver=solver, tolerance=1e-12, max_iterations=30)
        if result.converged:
            assert np.isfinite(x).all()
        else:
            assert not result.converged  # clean signal, no exception


class TestGMRESRestartBoundaries:
    def _planner(self, n=12):
        A = tridiagonal_toeplitz(n)
        b = np.ones(n)
        from repro.api import make_planner

        return make_planner(A, b, n_pieces=3), A, b

    def test_restart_one(self):
        # GMRES(1) is minimal-residual steepest descent: convergence is
        # slow but the boundary restart length must work mechanically.
        planner, A, b = self._planner()
        result = GMRESSolver(planner, restart=1).solve(
            tolerance=1e-5, max_iterations=500
        )
        assert result.converged

    def test_restart_equal_to_n(self):
        planner, A, b = self._planner(n=12)
        result = GMRESSolver(planner, restart=12).solve(
            tolerance=1e-10, max_iterations=5
        )
        # Full GMRES: exact (up to roundoff) within one restart cycle.
        assert result.converged

    def test_restart_exceeding_n(self):
        planner, A, b = self._planner(n=12)
        result = GMRESSolver(planner, restart=40).solve(
            tolerance=1e-10, max_iterations=5
        )
        assert result.converged
        from repro.core.planner import SOL

        x = planner.get_array(SOL)
        np.testing.assert_allclose(A @ x, b, atol=1e-7)

    def test_restart_zero_rejected(self):
        planner, _, _ = self._planner()
        with pytest.raises(ValueError, match="restart"):
            GMRESSolver(planner, restart=0)
