"""The process-pool backend: shared-memory store, worker accessors,
dispatch/fallback routing, fused nodes, deadlock diagnostics.

These tests drive ``src/repro/runtime/procpool.py`` directly (plus a
few end-to-end runs through the runtime facade); CI holds the module to
a >= 90% line-coverage bar with this file as the primary driver.
"""

import functools
import json
import re

import numpy as np
import pytest

from repro.api import make_planner
from repro.core.planner import SOL
from repro.problems.generators import tridiagonal_toeplitz
from repro.runtime import (
    DeadlockError,
    ExecutorError,
    FieldSpace,
    IndexSpace,
    LogicalRegion,
    Privilege,
    ProcKind,
    Runtime,
    Subset,
    TaskLauncher,
    TaskRecord,
)
from repro.runtime.kernels import KernelBody, TaskInvocation, register_kernel
from repro.runtime.procpool import (
    ProcPoolExecutor,
    SharedRegionStore,
    _picklable_exc,
    _ProcNode,
    _ShmAccessor,
    _worker_main,
    _WorkerState,
    shutdown_worker_pools,
)
from repro.verify.oracle import build_format


def make_region(n=8, fields=("v",)):
    return LogicalRegion(
        IndexSpace.linear(n), FieldSpace({f: np.float64 for f in fields})
    )


def make_record(name="t", reqs=(), owner=0, future_uid=None):
    return TaskRecord(
        task_id=TaskRecord.next_id(),
        name=name,
        requirements=list(reqs),
        proc_kind=ProcKind.CPU,
        flops=0.0,
        bytes_touched=0.0,
        owner_hint=owner,
        future_dep_uids=[],
        future_uid=future_uid,
    )


def rw_req(region, field="v", subset=None):
    from repro.runtime.task import RegionRequirement

    return RegionRequirement(
        region,
        (field,),
        subset if subset is not None else Subset.full(region.ispace),
        Privilege.READ_WRITE,
    )


# A kernel known to parent AND workers must live in the library registry
# (spawned workers import repro, not the test module); parent-only
# registrations are exactly what the unknown-kernel test needs.
try:
    @register_kernel("test-parent-only")
    def _k_parent_only(ctx, payload):  # pragma: no cover - never runs
        ctx[0].write(np.zeros(ctx[0].n_points))
except ValueError:  # already registered in this interpreter
    pass


class TestSharedRegionStore:
    def test_allocate_is_shared_and_described(self):
        store = SharedRegionStore()
        region = make_region(16)
        arr = store.allocate(region, "v", fill=2.5)
        assert (arr == 2.5).all()
        assert store.raw(region, "v") is arr
        name, dtype_str, volume = store.descriptor(region, "v")
        assert dtype_str == np.dtype(np.float64).str
        assert volume == 16
        # Another mapping of the segment sees the same bytes.
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        try:
            twin = np.ndarray((16,), dtype=np.float64, buffer=shm.buf)
            assert (twin == 2.5).all()
            arr[3] = 7.0
            assert twin[3] == 7.0
        finally:
            twin = None
            shm.close()
        store.release()

    def test_attach_copies_into_a_segment(self):
        # Unlike the base store's zero-copy adoption, crossing address
        # spaces forces a copy: later writes to the source must NOT be
        # visible through the region.
        store = SharedRegionStore()
        region = make_region(8)
        src = np.arange(8, dtype=np.float64)
        store.attach(region, "v", src)
        src[0] = 99.0
        assert store.raw(region, "v")[0] == 0.0
        assert store.descriptor(region, "v") is not None
        store.release()

    def test_attach_validation_matches_base_store(self):
        store = SharedRegionStore()
        region = make_region(8)
        with pytest.raises(ValueError, match="cannot back region"):
            store.attach(region, "v", np.zeros(5))
        with pytest.raises(TypeError, match="does not match field"):
            store.attach(region, "v", np.zeros(8, dtype=np.int32))
        store.release()

    def test_descriptor_missing_field_is_none(self):
        store = SharedRegionStore()
        assert store.descriptor(make_region(4), "v") is None
        store.release()

    def test_release_is_idempotent(self):
        store = SharedRegionStore()
        region = make_region(4)
        store.allocate(region, "v")
        store.release()
        assert store.descriptor(region, "v") is None
        store.release()  # second call must be a no-op


class TestShmAccessor:
    def test_slice_selection(self):
        arr = np.arange(10, dtype=np.float64)
        acc = _ShmAccessor(arr, slice(2, 6))
        assert acc.n_points == 4
        assert (acc.read() == [2, 3, 4, 5]).all()
        acc.write(np.zeros(4))
        acc.reduce_add(np.ones(4))
        assert (arr[2:6] == 1.0).all()
        assert arr[6] == 6.0

    def test_fancy_selection(self):
        arr = np.zeros(8, dtype=np.float64)
        sel = np.array([1, 3, 5], dtype=np.int64)
        acc = _ShmAccessor(arr, sel)
        assert acc.n_points == 3
        acc.write(np.full(3, 2.0))
        acc.reduce_add(np.full(3, 0.5))
        assert (arr[sel] == 2.5).all()
        assert arr[0] == 0.0

    def test_scatter_add(self):
        arr = np.zeros(6, dtype=np.float64)
        acc = _ShmAccessor(arr, slice(0, 6))
        acc.scatter_add(np.array([1, 1, 4]), np.array([1.0, 2.0, 3.0]))
        assert arr[1] == 3.0 and arr[4] == 3.0


class TestPicklableExc:
    def test_passthrough(self):
        exc = ValueError("boom")
        assert _picklable_exc(exc) is exc

    def test_unpicklable_is_rewritten(self):
        class Evil(Exception):
            def __reduce__(self):
                raise TypeError("nope")

        out = _picklable_exc(Evil("inner detail"))
        assert isinstance(out, RuntimeError)
        assert "Evil" in str(out) and "inner detail" in str(out)


class TestProcNode:
    def test_member_ids_and_portability(self):
        r1, r2 = make_record("a"), make_record("b")
        inv = TaskInvocation("fill", kwargs={"value": 0.0})
        node = _ProcNode(r1.task_id, "a", [(r1, None, None, inv), (r2, None, None, inv)])
        assert node.member_ids == [r1.task_id, r2.task_id]
        assert node.portable
        node.parts[1] = (r2, None, None, None)
        assert not node.portable


class TestDirectDispatch:
    def test_kernel_runs_in_worker_and_caches_shipments(self):
        store = SharedRegionStore()
        region = make_region(8)
        arr = store.allocate(region, "v")
        ex = ProcPoolExecutor(n_workers=2, store=store)
        ran_inline = []
        try:
            for expect in (3.5, 4.5):
                rec = make_record("fill", reqs=[rw_req(region)], owner=1)
                inv = TaskInvocation("fill", kwargs={"value": expect}, point=1)
                ex.submit(rec, lambda: ran_inline.append(1), lambda _v: None,
                          set(), invocation=inv)
                ex.drain()
                assert (arr == expect).all()
            # The body crossed the process boundary both times; the
            # second dispatch reused the worker's cached subset.
            assert ran_inline == []
            assert ex.n_dispatched == 2
            assert ex.n_inline_fallback == 0
        finally:
            ex.shutdown()
            store.release()

    def test_payload_ships_once_and_is_cached(self):
        store = SharedRegionStore()
        region = make_region(8, fields=("a", "x", "y"))
        store.allocate(region, "a", fill=1.0)
        x = store.allocate(region, "x")
        y = store.allocate(region, "y")
        x[:] = np.arange(8, dtype=np.float64)
        ex = ProcPoolExecutor(n_workers=1, store=store)
        payload = functools.partial(np.multiply, 2.0)  # picklable callable
        try:
            for _ in range(2):
                reqs = [rw_req(region, f) for f in ("a", "x", "y")]
                rec = make_record("spmv", reqs=reqs, owner=0)
                inv = TaskInvocation("spmv_exclusive", payload=payload, point=0)
                ex.submit(rec, lambda: pytest.fail("ran inline"),
                          lambda _v: None, set(), invocation=inv)
                ex.drain()
                assert (y == 2.0 * x).all()
            assert ex.n_dispatched == 2
            assert len(ex._payload_refs) == 1  # one shipped payload key
        finally:
            ex.shutdown()
            store.release()

    def test_host_task_runs_inline(self):
        ex = ProcPoolExecutor(n_workers=1, store=SharedRegionStore())
        got = []
        try:
            ex.submit(make_record("host"), lambda: 42, got.append, set())
            ex.drain()
            assert got == [42]
            assert ex.n_inline_host == 1
            assert ex.n_dispatched == 0
        finally:
            ex.shutdown()

    def test_worker_value_reaches_on_done(self):
        store = SharedRegionStore()
        region = make_region(8, fields=("p", "q"))
        store.allocate(region, "p", fill=2.0)
        store.allocate(region, "q", fill=3.0)
        ex = ProcPoolExecutor(n_workers=1, store=store)
        got = []
        try:
            reqs = [rw_req(region, f) for f in ("p", "q")]
            rec = make_record("dot", reqs=reqs)
            inv = TaskInvocation("dot_partial", point=0)
            ex.submit(rec, lambda: pytest.fail("ran inline"), got.append,
                      set(), invocation=inv)
            ex.drain()
            assert got == [8 * 6.0]
        finally:
            ex.shutdown()
            store.release()

    def test_unknown_worker_kernel_raises_executor_error(self):
        # Registered in the parent's registry only: the worker's KeyError
        # must surface at drain, not hang.
        store = SharedRegionStore()
        region = make_region(8)
        store.allocate(region, "v")
        ex = ProcPoolExecutor(n_workers=1, store=store)
        try:
            rec = make_record("parent-only", reqs=[rw_req(region)])
            inv = TaskInvocation("test-parent-only", point=0)
            ex.submit(rec, lambda: None, lambda _v: None, set(), invocation=inv)
            with pytest.raises(ExecutorError, match="test-parent-only"):
                ex.drain()
        finally:
            ex.shutdown()
            store.release()

    def test_unpicklable_payload_falls_back_inline(self):
        store = SharedRegionStore()
        region = make_region(8, fields=("a", "x", "y"))
        for f in ("a", "x", "y"):
            store.allocate(region, f, fill=1.0)
        ex = ProcPoolExecutor(n_workers=1, store=store)
        body = KernelBody("spmv_exclusive", payload=lambda v: v + 1.0)
        try:
            reqs = [rw_req(region, f) for f in ("a", "x", "y")]
            rec = make_record("spmv", reqs=reqs)
            inv = TaskInvocation("spmv_exclusive", payload=body.payload, point=0)

            def thunk():
                acc = [_ShmAccessor(store.raw(region, f), slice(0, 8))
                       for f in ("a", "x", "y")]
                acc[2].write(body.payload(acc[1].read()))

            ex.submit(rec, thunk, lambda _v: None, set(), invocation=inv)
            ex.drain()
            assert ex.n_inline_fallback == 1
            assert (store.raw(region, "y") == 2.0).all()
        finally:
            ex.shutdown()
            store.release()

    def test_plain_store_means_inline_fallback(self):
        # Without a SharedRegionStore nothing can ship: every body with
        # requirements degrades to in-parent execution (and is counted).
        ex = ProcPoolExecutor(n_workers=1, store=None)
        region = make_region(4)
        done = []
        try:
            rec = make_record("t", reqs=[rw_req(region)])
            inv = TaskInvocation("fill", kwargs={"value": 0.0}, point=0)
            ex.submit(rec, lambda: done.append(1), lambda _v: None, set(),
                      invocation=inv)
            ex.drain()
            assert done == [1]
            assert ex.n_inline_fallback == 1
        finally:
            ex.shutdown()


class TestSubmitFused:
    def test_fused_parts_run_in_order_inline(self):
        ex = ProcPoolExecutor(n_workers=1, store=None)
        order = []
        try:
            recs = [make_record(n) for n in ("a", "b", "c")]
            parts = [
                (r, (lambda tag=r.name: order.append(tag)), lambda _v: None, set())
                for r in recs
            ]
            ex.submit_fused(parts)
            ex.drain()
            assert order == ["a", "b", "c"]
            assert ex.n_fused_groups == 1
            assert ex.n_fused_members == 3
        finally:
            ex.shutdown()

    def test_dependence_on_fused_member_resolves_to_node(self):
        ex = ProcPoolExecutor(n_workers=1, store=None)
        order = []
        try:
            ra, rb = make_record("a"), make_record("b")
            ex.submit_fused([
                (ra, lambda: order.append("a"), lambda _v: None, set()),
                (rb, lambda: order.append("b"), lambda _v: None, {ra.task_id}),
            ])
            rc = make_record("c")
            ex.submit(rc, lambda: order.append("c"), lambda _v: None,
                      {rb.task_id})  # dep names the *member*, not the node
            ex.drain()
            assert order == ["a", "b", "c"]
        finally:
            ex.shutdown()

    def test_fused_group_ships_to_worker_as_one_message(self):
        store = SharedRegionStore()
        region = make_region(8)
        arr = store.allocate(region, "v")
        ex = ProcPoolExecutor(n_workers=1, store=store)
        try:
            ra = make_record("fill", reqs=[rw_req(region)])
            rb = make_record("scal", reqs=[rw_req(region)])
            ex.submit_fused(
                [
                    (ra, lambda: pytest.fail("inline"), lambda _v: None, set()),
                    (rb, lambda: pytest.fail("inline"), lambda _v: None, {ra.task_id}),
                ],
                invocations=[
                    TaskInvocation("fill", kwargs={"value": 3.0}, point=0),
                    TaskInvocation("scal", kwargs={"alpha": 2.0}, point=0),
                ],
            )
            ex.drain()
            assert (arr == 6.0).all()
            assert ex.n_dispatched == 2
            assert ex.n_fused_groups == 1
        finally:
            ex.shutdown()
            store.release()


class TestDeadlockDiagnostics:
    def _drain_expecting(self, ex, pattern):
        with pytest.raises(DeadlockError, match=pattern) as ei:
            ex.drain()
        ex._pending.clear()
        m = re.search(r"blocked-subgraph trace written to (\S+\.json)", str(ei.value))
        assert m, str(ei.value)
        with open(m.group(1), encoding="utf-8") as fh:
            return json.load(fh)

    def test_missing_producer_is_diagnosed_with_dump(self):
        ex = ProcPoolExecutor(n_workers=1, store=None)
        try:
            rec = make_record("orphan")
            node = _ProcNode(rec.task_id, "orphan", [(rec, lambda: None, lambda _v: None, None)])
            node.waiting_on = {999_999_999}
            with ex._lock:
                ex._pending[node.task_id] = node
            dump = self._drain_expecting(ex, "never submitted")
            assert dump["schema"] == "repro-deadlock/1"
            assert dump["backend"] == "procs"
            assert dump["reason"] == "missing-producer"
            assert dump["blocked_subgraph"][0]["name"] == "orphan"
        finally:
            ex.shutdown()

    def test_cycle_is_diagnosed_with_fused_composition(self):
        # Satellite: the blocked-subgraph dump must show what a fused
        # node is *made of*, or a cycle through a coarse node is opaque.
        ex = ProcPoolExecutor(n_workers=1, store=None)
        try:
            ra, rb, rc = make_record("a"), make_record("b"), make_record("c")
            fused = _ProcNode(ra.task_id, "fused[a+b]", [
                (ra, lambda: None, lambda _v: None, None),
                (rb, lambda: None, lambda _v: None, None),
            ])
            other = _ProcNode(rc.task_id, "c", [(rc, lambda: None, lambda _v: None, None)])
            fused.waiting_on = {rc.task_id}
            fused.dependents = [rc.task_id]
            other.waiting_on = {ra.task_id}
            other.dependents = [ra.task_id]
            with ex._lock:
                ex._pending[fused.task_id] = fused
                ex._pending[other.task_id] = other
                ex._stalled.add(ra.task_id)
            ex.stall_monitor = lambda: {123456}
            dump = self._drain_expecting(ex, "dependence cycle")
            assert dump["reason"] == "dependence-cycle"
            entries = {e["name"]: e for e in dump["blocked_subgraph"]}
            assert entries["fused[a+b]"]["fused"] == [
                {"task_id": ra.task_id, "name": "a"},
                {"task_id": rb.task_id, "name": "b"},
            ]
            assert "fused" not in entries["c"]
            assert ra.task_id in dump["stalled_task_ids"]
            assert 123456 in dump["stalled_task_ids"]
        finally:
            ex.stall_monitor = None
            ex.shutdown()

    def test_worker_death_with_inflight_task_raises(self):
        ex = ProcPoolExecutor(n_workers=1, store=None)
        try:
            rec = make_record("stuck")
            node = _ProcNode(rec.task_id, "stuck", [(rec, lambda: None, lambda _v: None, None)])
            node.claimed = True
            with ex._lock:
                ex._pending[node.task_id] = node
                ex._inflight.add(node.task_id)
            ex._pool._stopped = True  # simulate a dead pool
            with pytest.raises(ExecutorError, match="pool worker died"):
                ex.drain()
            ex._pool._stopped = False
            with ex._lock:
                ex._pending.clear()
                ex._inflight.clear()
        finally:
            ex.shutdown()


class TestPoolLifecycle:
    def test_send_failure_after_pool_shutdown_raises(self):
        store = SharedRegionStore()
        region = make_region(8)
        store.allocate(region, "v")
        ex = ProcPoolExecutor(n_workers=1, store=store)
        try:
            shutdown_worker_pools()  # the executor's pool is now gone
            rec = make_record("fill", reqs=[rw_req(region)])
            inv = TaskInvocation("fill", kwargs={"value": 1.0}, point=0)
            ex.submit(rec, lambda: None, lambda _v: None, set(), invocation=inv)
            with pytest.raises(ExecutorError):
                ex.drain()
        finally:
            ex.shutdown()
            store.release()

    def test_shutdown_is_idempotent_and_routes_unregister(self):
        ex = ProcPoolExecutor(n_workers=1, store=SharedRegionStore())
        epoch = ex._epoch
        pool = ex._pool
        ex.shutdown()
        ex.shutdown()
        with pool._routes_lock:
            assert epoch not in pool._routes

    def test_stats_keys(self):
        ex = ProcPoolExecutor(n_workers=3, store=None)
        try:
            stats = ex.stats()
            assert stats["backend"] == "procs"
            assert stats["workers"] == 3
            assert ex.n_parallel == 3
            for key in ("dispatched_tasks", "inline_host_tasks",
                        "inline_fallback_tasks", "fused_groups",
                        "fused_member_tasks"):
                assert stats[key] == 0
            assert ProcPoolExecutor.wants_invocations
        finally:
            ex.shutdown()

    def test_wait_for_unknown_future_returns(self):
        ex = ProcPoolExecutor(n_workers=1, store=None)
        try:
            ex.wait_for_future(987654)  # nothing registered: no-op
        finally:
            ex.shutdown()


def _fill_part(store, region, uid=None, desc="auto", value=2.0,
               kernel="fill", payload_key=None, payload=None):
    """Hand-build the wire form `_part_message` would produce."""
    name, dtype_str, volume = store.descriptor(region, "v")
    if desc == "auto":
        desc = ("s", 0, region.volume)
    sub_uid = uid if uid is not None else region.uid
    return {
        "kernel": kernel,
        "kwargs": {"value": value},
        "point": 0,
        "reqs": [(name, dtype_str, volume, sub_uid, desc)],
        "payload_key": payload_key,
        "payload": payload,
    }


class TestWorkerState:
    """The worker-side half, driven in-process: coverage tooling cannot
    see spawned children, and these paths must stay on the gate."""

    def test_run_part_attaches_and_caches_slices(self):
        store = SharedRegionStore()
        region = make_region(8)
        arr = store.allocate(region, "v")
        state = _WorkerState()
        try:
            state.run_part(_fill_part(store, region, value=2.0), epoch=7)
            assert (arr == 2.0).all()
            # Second call: subset arrives as None (already shipped) and
            # the segment mapping is reused from the cache.
            state.run_part(_fill_part(store, region, desc=None, value=3.0), epoch=7)
            assert (arr == 3.0).all()
            assert len(state.shms) == 1
        finally:
            state.clear(7)
            store.release()

    def test_run_part_fancy_index_subset(self):
        store = SharedRegionStore()
        region = make_region(8)
        arr = store.allocate(region, "v")
        state = _WorkerState()
        try:
            part = _fill_part(store, region, uid=region.uid + 1000,
                              desc=("i", [1, 3, 5]), value=9.0)
            state.run_part(part, epoch=7)
            assert (arr[[1, 3, 5]] == 9.0).all()
            assert arr[0] == 0.0
        finally:
            state.clear(7)
            store.release()

    def test_unshipped_subset_is_an_error(self):
        store = SharedRegionStore()
        region = make_region(8)
        store.allocate(region, "v")
        state = _WorkerState()
        try:
            with pytest.raises(RuntimeError, match="never shipped"):
                state.run_part(_fill_part(store, region, desc=None), epoch=7)
        finally:
            state.clear(7)
            store.release()

    def test_payload_rides_once_then_resolves_from_cache(self):
        store = SharedRegionStore()
        region = make_region(8, fields=("a", "x", "y"))
        for f in ("a", "x", "y"):
            store.allocate(region, f, fill=1.0)
        state = _WorkerState()
        try:
            def reqs(shipped):
                out = []
                for i, f in enumerate(("a", "x", "y")):
                    name, dtype_str, volume = store.descriptor(region, f)
                    desc = ("s", 0, 8) if shipped else None
                    out.append((name, dtype_str, volume, region.uid * 10 + i, desc))
                return out

            part = {"kernel": "spmv_exclusive", "kwargs": {}, "point": 0,
                    "reqs": reqs(True), "payload_key": 0,
                    "payload": functools.partial(np.multiply, 4.0)}
            state.run_part(part, epoch=7)
            assert (store.raw(region, "y") == 4.0).all()
            part2 = {"kernel": "spmv_exclusive", "kwargs": {}, "point": 0,
                     "reqs": reqs(False), "payload_key": 0, "payload": None}
            state.run_part(part2, epoch=7)  # payload resolved from cache
        finally:
            state.clear(7)
            assert not state.payloads and not state.subsets and not state.shms
            store.release()

    def test_worker_main_loop_over_fake_pipe(self):
        class FakeConn:
            def __init__(self, msgs):
                self.msgs = list(msgs)

            def recv(self):
                if not self.msgs:
                    raise EOFError
                return self.msgs.pop(0)

        class FakeQueue:
            def __init__(self):
                self.items = []

            def put(self, item):
                self.items.append(item)

        store = SharedRegionStore()
        region = make_region(8)
        arr = store.allocate(region, "v")
        ok_part = _fill_part(store, region, value=5.0)
        bad_part = dict(ok_part, kernel="no-such-kernel")
        results = FakeQueue()
        _worker_main(
            FakeConn([
                ("task", 7, 11, 1.0, [ok_part], True),   # stall_ms covers the sleep
                ("task", 7, 12, 0, [bad_part], False),
                ("clear", 7),
                ("stop",),
            ]),
            results,
            0,
        )
        assert (arr == 5.0).all()
        epoch, tid, ok, values, body_s = results.items[0]
        assert (epoch, tid, ok, values) == (7, 11, True, [None])
        # Sampled task: the span batch rides back with the result and
        # covers at least the injected 1ms stall.
        assert body_s is not None and body_s >= 0.001
        epoch, tid, ok, exc, body_s = results.items[1]
        assert (epoch, tid, ok) == (7, 12, False)
        assert isinstance(exc, KeyError)
        assert body_s is None  # unsampled: no measurement shipped
        # EOF (a closed pipe) ends the loop too.
        _worker_main(FakeConn([]), FakeQueue(), 0)
        store.release()


def solve_on(backend, pieces=2, size=24):
    rt = Runtime(backend=backend)
    try:
        A = tridiagonal_toeplitz(size).tocsr()
        b = np.random.default_rng(5).random(size)
        planner = make_planner(build_format("csr", A), b, n_pieces=pieces, runtime=rt)
        from repro.core.solvers import SOLVER_REGISTRY

        result = SOLVER_REGISTRY["cg"](planner).solve(tolerance=0.0, max_iterations=4)
        rt.sync()
        x = np.array(planner.get_array(SOL), copy=True)
        stats = rt.dispatch_stats()
    finally:
        rt.executor.shutdown()
    return list(result.measure_history), x, stats


class TestRuntimeIntegration:
    def test_runtime_procs_uses_shared_store(self):
        rt = Runtime(backend="procs")
        try:
            assert isinstance(rt.store, SharedRegionStore)
            assert rt.backend == "procs"
        finally:
            rt.executor.shutdown()

    def test_cg_on_procs_matches_serial_with_zero_fallbacks(self):
        ref_hist, ref_x, _ = solve_on("serial")
        hist, x, stats = solve_on("procs")
        ex_stats = stats["executor"]
        assert ex_stats["dispatched_tasks"] > 0
        assert ex_stats["inline_fallback_tasks"] == 0
        assert ex_stats["inline_host_tasks"] > 0  # dot reductions stay home
        assert stats["backend"] == "procs"
        assert hist == ref_hist
        assert np.array_equal(x, ref_x)

    def test_sequential_runtimes_reuse_the_pool_cleanly(self):
        # Epoch namespacing: a second runtime's worker-side caches must
        # not see the first one's subsets/payloads.
        a = solve_on("procs")
        b = solve_on("procs")
        assert a[0] == b[0]
        assert np.array_equal(a[1], b[1])

    def test_closure_body_falls_back_inline_through_runtime(self):
        rt = Runtime(backend="procs")
        try:
            region = rt.create_region(IndexSpace.linear(8), {"v": np.float64})
            rt.allocate(region, "v", fill=1.0)

            def body(ctx):  # an opaque closure: not portable
                ctx[0].write(ctx[0].read() * 3.0)

            tl = TaskLauncher("triple", body)
            tl.add_requirement(region, ["v"], Subset.full(region.ispace),
                               Privilege.READ_WRITE)
            rt.execute(tl)
            rt.sync()
            assert (rt.store.raw(region, "v") == 3.0).all()
            stats = rt.dispatch_stats()["executor"]
            assert stats["inline_fallback_tasks"] == 1
        finally:
            rt.executor.shutdown()

    def test_worker_error_through_runtime_surfaces_at_sync(self):
        rt = Runtime(backend="procs")
        try:
            region = rt.create_region(IndexSpace.linear(8), {"v": np.float64})
            rt.allocate(region, "v")
            tl = TaskLauncher("bad", KernelBody("test-parent-only"))
            tl.add_requirement(region, ["v"], Subset.full(region.ispace),
                               Privilege.READ_WRITE)
            rt.execute(tl)
            with pytest.raises(ExecutorError):
                rt.sync()
        finally:
            rt.executor.shutdown()
