"""Deferred execution backends: scheduling, draining, deadlock detection."""

import threading

import numpy as np
import pytest

from repro.runtime import (
    DeadlockError,
    ExecutorError,
    Future,
    IndexLauncher,
    IndexSpace,
    Partition,
    Privilege,
    ProcKind,
    Runtime,
    SerialExecutor,
    ShardedMapper,
    Subset,
    TaskLauncher,
    TaskRecord,
    ThreadedExecutor,
    lassen,
    make_executor,
)


def make_runtime(backend, jobs=4):
    m = lassen(1)
    return Runtime(machine=m, mapper=ShardedMapper(m), backend=backend, jobs=jobs)


def record(name="t", future_uid=None):
    return TaskRecord(
        task_id=TaskRecord.next_id(),
        name=name,
        requirements=[],
        proc_kind=ProcKind.CPU,
        flops=0.0,
        bytes_touched=0.0,
        owner_hint=0,
        future_dep_uids=[],
        future_uid=future_uid,
    )


class TestMakeExecutor:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert isinstance(make_executor(), SerialExecutor)

    def test_explicit_threads(self):
        ex = make_executor("threads", jobs=2)
        try:
            assert isinstance(ex, ThreadedExecutor)
            assert ex.name == "threads"
            assert ex.n_parallel == 2
        finally:
            ex.shutdown()

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "threads")
        monkeypatch.setenv("REPRO_JOBS", "3")
        ex = make_executor()
        try:
            assert ex.name == "threads"
            assert ex.n_parallel == 3
        finally:
            ex.shutdown()

    def test_bogus_env_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "definitely-not-a-backend")
        assert make_executor().name == "serial"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_executor("fibers")


class TestSerialExecutor:
    def test_runs_inline(self):
        ex = SerialExecutor()
        seen = []
        ex.submit(record(), lambda: 41 + 1, seen.append, set())
        assert seen == [42]  # ran at submit, before any drain
        ex.drain()
        ex.wait_for_future(12345)  # no-ops

    def test_n_parallel_is_one(self):
        assert SerialExecutor().n_parallel == 1


@pytest.fixture
def ex():
    executor = ThreadedExecutor(n_workers=4)
    yield executor
    executor.shutdown()


class TestThreadedExecutor:
    def test_dependence_chain_runs_in_order(self, ex):
        order = []
        lock = threading.Lock()

        def body(tag):
            def thunk():
                with lock:
                    order.append(tag)
            return thunk

        r1, r2, r3 = record("a"), record("b"), record("c")
        ex.submit(r1, body("a"), lambda _: None, set())
        ex.submit(r2, body("b"), lambda _: None, {r1.task_id})
        ex.submit(r3, body("c"), lambda _: None, {r2.task_id})
        ex.drain()
        assert order == ["a", "b", "c"]

    def test_fan_in_barrier_under_contention(self, ex):
        done = set()
        lock = threading.Lock()
        parents = [record(f"p{i}") for i in range(16)]

        def parent_body(i):
            def thunk():
                with lock:
                    done.add(i)
            return thunk

        for i, r in enumerate(parents):
            ex.submit(r, parent_body(i), lambda _: None, set())
        snapshot = {}

        def child_thunk():
            with lock:
                snapshot["done"] = set(done)

        ex.submit(record("child"), child_thunk, lambda _: None,
                  {r.task_id for r in parents})
        ex.drain()
        assert snapshot["done"] == set(range(16))  # all parents ran first

    def test_unknown_deps_treated_as_complete(self, ex):
        seen = []
        ex.submit(record(), lambda: "ok", seen.append, {10 ** 9})
        ex.drain()
        assert seen == ["ok"]

    def test_body_error_surfaces_at_drain(self, ex):
        def boom():
            raise ValueError("kaput")

        ex.submit(record("boom"), boom, lambda _: None, set())
        with pytest.raises(ExecutorError, match="kaput"):
            ex.drain()
        ex.drain()  # error is delivered once; executor stays usable

    def test_wait_for_future_runs_exactly_the_needed_chain(self, ex):
        ran = []
        lock = threading.Lock()
        gate = threading.Event()

        def body(tag, wait=False):
            def thunk():
                if wait:
                    gate.wait(timeout=10)
                with lock:
                    ran.append(tag)
            return thunk

        slow = record("slow")
        fut = Future()
        target = record("target", future_uid=fut.uid)
        ex.submit(slow, body("slow", wait=True), lambda _: None, set())
        ex.submit(target, body("target"), lambda v: fut.set(v), set())
        ex.wait_for_future(fut.uid)  # must not require the slow task
        assert "target" in ran
        assert fut.ready
        gate.set()
        ex.drain()
        assert sorted(ran) == ["slow", "target"]

    def test_wait_for_unmanaged_future_is_noop(self, ex):
        ex.wait_for_future(987654)  # returns immediately


class TestDeadlockDetection:
    def test_get_on_never_produced_future_errors_not_hangs(self):
        rt = make_runtime("threads", jobs=2)
        try:
            f = Future()
            f._waiter = rt.executor
            with pytest.raises(RuntimeError, match="not yet produced"):
                f.get()
        finally:
            rt.executor.shutdown()

    def test_self_wait_cycle_is_detected(self):
        """A body that blocks on a future of a task depending on itself
        can never be satisfied: DeadlockError, not a hang."""
        rt = make_runtime("threads", jobs=2)
        try:
            region = rt.create_region(IndexSpace.linear(8), {"v": np.float64})
            rt.allocate(region, "v", fill=1.0)
            cell = {}
            launched = threading.Event()

            def body_a(ctx):
                launched.wait(timeout=10)
                return cell["fb"].get()  # B depends on A: cycle

            tl_a = TaskLauncher("a", body_a)
            tl_a.add_requirement(region, ["v"], Subset.full(region.ispace),
                                 Privilege.READ_WRITE)
            fa = rt.execute(tl_a)

            def body_b(ctx):
                return float(ctx[0].read().sum())

            tl_b = TaskLauncher("b", body_b)
            tl_b.add_requirement(region, ["v"], Subset.full(region.ispace),
                                 Privilege.READ_WRITE)
            cell["fb"] = rt.execute(tl_b)  # engine edge: b after a
            launched.set()
            with pytest.raises(ExecutorError, match="DeadlockError"):
                rt.sync()
            assert fa is not None
        finally:
            rt.executor.shutdown()


def double_task(region, piece, hint):
    def body(ctx):
        ctx[0].write(ctx[0].read() * 2.0)

    tl = TaskLauncher("double", body, proc_kind=ProcKind.GPU, owner_hint=hint)
    tl.add_requirement(region, ["v"], piece, Privilege.READ_WRITE)
    return tl


class TestThreadedRuntime:
    """The runtime facade on the threads backend: launches defer, drains
    restore eager semantics."""

    def test_sync_establishes_eager_state(self):
        rt = make_runtime("threads")
        vec = rt.create_region(IndexSpace.linear(1 << 10), {"v": np.float64})
        rt.allocate(vec, "v", fill=1.0)
        part = Partition.equal(vec.ispace, 8)
        for _ in range(3):
            for p in range(8):
                rt.execute(double_task(vec, part[p], p), point=p)
        rt.sync()
        assert (rt.store.raw(vec, "v") == 8.0).all()
        rt.executor.shutdown()

    def test_future_get_drains_dependences(self):
        rt = make_runtime("threads")
        vec = rt.create_region(IndexSpace.linear(256), {"v": np.float64})
        rt.allocate(vec, "v", fill=1.0)
        part = Partition.equal(vec.ispace, 4)
        for p in range(4):
            rt.execute(double_task(vec, part[p], p), point=p)

        def body(ctx):
            return float(ctx[0].read().sum())

        tl = TaskLauncher("sum", body)
        tl.add_requirement(vec, ["v"], Subset.full(vec.ispace), Privilege.READ_ONLY)
        assert rt.execute(tl).get() == 512.0  # doubles observed, bitwise
        rt.executor.shutdown()

    def test_fence_drains_and_advances_sim_time(self):
        rt = make_runtime("threads")
        vec = rt.create_region(IndexSpace.linear(256), {"v": np.float64})
        rt.allocate(vec, "v", fill=1.0)
        part = Partition.equal(vec.ispace, 4)
        for p in range(4):
            rt.execute(double_task(vec, part[p], p), point=p)
        t = rt.fence()
        assert t > 0.0
        assert (rt.store.raw(vec, "v") == 2.0).all()
        rt.executor.shutdown()

    def test_index_reduction_matches_serial_bitwise(self):
        results = {}
        for backend in ("serial", "threads"):
            rt = make_runtime(backend)
            vec = rt.create_region(IndexSpace.linear(1 << 10), {"v": np.float64})
            rng = np.random.default_rng(7)
            rt.attach(vec, "v", rng.random(1 << 10))
            part = Partition.equal(vec.ispace, 8)

            def make_point(p, part=part, vec=vec):
                def body(ctx):
                    return float(ctx[0].read().sum())

                tl = TaskLauncher("partial", body, owner_hint=p)
                tl.add_requirement(vec, ["v"], part[p], Privilege.READ_ONLY)
                return tl

            futures = rt.execute_index(
                IndexLauncher("dot", 8, make_point, reduction=sum)
            )
            results[backend] = futures[0].get()
            rt.executor.shutdown()
        # Launch-order gathering makes the reduction tree identical, so
        # floating point agrees bitwise, not just approximately.
        assert results["serial"] == results["threads"]
