"""Machine model: device layout, cost functions, presets."""


import pytest

from repro.runtime import Machine, ProcKind, laptop, lassen, lassen_scaled


class TestLayout:
    def test_lassen_device_counts(self):
        m = lassen(4)
        assert m.n_nodes == 4
        assert len(m.gpus) == 16
        assert len(m.cpus) == 4
        assert m.n_devices == 20

    def test_device_lookup(self):
        m = lassen(2)
        assert m.cpu(1).kind is ProcKind.CPU and m.cpu(1).node == 1
        g = m.gpu(1, 3)
        assert g.kind is ProcKind.GPU and g.node == 1 and g.local_index == 3
        assert m.device(g.device_id) is g

    def test_gpu_index_bounds(self):
        with pytest.raises(IndexError):
            lassen(1).gpu(0, 4)

    def test_no_nodes_rejected(self):
        with pytest.raises(ValueError):
            Machine(n_nodes=0)

    def test_cpu_pool_aggregates_cores(self):
        m = lassen(1)
        assert m.cpu(0).gflops == pytest.approx(40 * 15.0)


class TestKernelTime:
    def test_roofline_max(self):
        m = lassen(1)
        gpu = m.gpu(0, 0)
        # Bandwidth-bound: 900 GB/s.
        t = gpu.kernel_time(flops=0.0, bytes_touched=900e9)
        assert t == pytest.approx(1.0 + gpu.launch_overhead)
        # Flop-bound: 7.8 TF/s.
        t = gpu.kernel_time(flops=7800e9 * 2, bytes_touched=0.0)
        assert t == pytest.approx(2.0 + gpu.launch_overhead)

    def test_gather_penalty_applies_only_to_irregular(self):
        gpu = lassen(1).gpu(0, 0)
        regular = gpu.kernel_time(0.0, 1e9)
        irregular = gpu.kernel_time(0.0, 1e9, irregular=True)
        assert irregular > regular
        assert (irregular - gpu.launch_overhead) == pytest.approx(
            (regular - gpu.launch_overhead) * gpu.gather_penalty
        )

    def test_cpu_gather_penalty_heavier_than_gpu(self):
        m = lassen(1)
        assert m.cpu(0).gather_penalty > m.gpu(0, 0).gather_penalty

    def test_throughput_scale_slows_kernels(self):
        cpu = lassen(1).cpu(0)
        base = cpu.kernel_time(1e9, 1e9)
        cpu.throughput_scale = 0.5
        slowed = cpu.kernel_time(1e9, 1e9)
        assert slowed > base


class TestTransfer:
    def test_same_device_free(self):
        m = lassen(2)
        g = m.gpu(0, 0)
        assert m.transfer_time(g, g, 1e6) == 0.0
        assert m.transfer_time(g, m.gpu(1, 0), 0.0) == 0.0

    def test_nvlink_vs_nic(self):
        m = lassen(2)
        same_node = m.transfer_time(m.gpu(0, 0), m.gpu(0, 1), 1e6)
        cross_node = m.transfer_time(m.gpu(0, 0), m.gpu(1, 0), 1e6)
        assert cross_node > same_node

    def test_allreduce_scales_logarithmically(self):
        m = lassen(4)
        t2 = m.allreduce_time(2, 8)
        t16 = m.allreduce_time(16, 8)
        assert t16 == pytest.approx(4 * t2)
        assert m.allreduce_time(1, 8) == 0.0


class TestBackgroundLoad:
    def test_occupancy_scales_throughput(self):
        m = lassen(2)
        m.set_cpu_background_load(0, 20)
        assert m.cpu(0).throughput_scale == pytest.approx(0.5)
        assert m.cpu(1).throughput_scale == 1.0
        m.clear_background_load()
        assert m.cpu(0).throughput_scale == 1.0

    def test_bounds_validated(self):
        m = lassen(1)
        with pytest.raises(ValueError):
            m.set_cpu_background_load(0, 40)
        with pytest.raises(ValueError):
            m.set_cpu_background_load(0, -1)


class TestPresets:
    def test_laptop_has_no_gpus(self):
        m = laptop()
        assert not m.gpus
        assert m.n_nodes == 1

    def test_scaled_preserves_latency_scales_bandwidth(self):
        base, scaled = lassen(2), lassen_scaled(2, 8.0)
        assert scaled.nic_latency == base.nic_latency
        assert scaled.analysis_overhead == base.analysis_overhead
        assert scaled.gpu_mem_bw == pytest.approx(base.gpu_mem_bw / 8)
        assert scaled.nic_bw == pytest.approx(base.nic_bw / 8)

    def test_scaled_equivalence(self):
        """Time of N bytes on the scaled machine equals 8N on the base."""
        base, scaled = lassen(1), lassen_scaled(1, 8.0)
        tb = base.gpu(0, 0).kernel_time(0.0, 8e9)
        ts = scaled.gpu(0, 0).kernel_time(0.0, 1e9)
        assert ts == pytest.approx(tb)

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            lassen_scaled(1, 0.0)
