"""Partitions: constructors, disjointness/completeness metadata."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.runtime import IndexSpace, Partition, Subset


class TestEqual:
    def test_even_split(self):
        s = IndexSpace.linear(100)
        p = Partition.equal(s, 4)
        assert [pc.volume for pc in p] == [25, 25, 25, 25]
        assert p.is_disjoint and p.is_complete

    def test_uneven_split_sizes_differ_by_at_most_one(self):
        s = IndexSpace.linear(10)
        p = Partition.equal(s, 3)
        sizes = [pc.volume for pc in p]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_pieces_contiguous(self):
        p = Partition.equal(IndexSpace.linear(17), 5)
        assert all(pc.is_contiguous for pc in p)

    def test_too_many_pieces_raises(self):
        with pytest.raises(ValueError):
            Partition.equal(IndexSpace.linear(3), 4)

    def test_nonpositive_raises(self):
        with pytest.raises(ValueError):
            Partition.equal(IndexSpace.linear(3), 0)


class TestByBlocks:
    def test_2d_tiles_cover_grid(self):
        s = IndexSpace.grid(8, 6)
        p = Partition.by_blocks(s, (2, 3))
        assert p.n_colors == 6
        assert p.is_disjoint and p.is_complete
        assert sum(pc.volume for pc in p) == 48

    def test_tile_contents_are_rectangles(self):
        s = IndexSpace.grid(4, 4)
        p = Partition.by_blocks(s, (2, 2))
        coords = p[0].coords()
        assert coords[:, 0].max() <= 1 and coords[:, 1].max() <= 1

    def test_wrong_tile_dims_raise(self):
        with pytest.raises(ValueError):
            Partition.by_blocks(IndexSpace.grid(4, 4), (2,))
        with pytest.raises(ValueError):
            Partition.by_blocks(IndexSpace.grid(4, 4), (5, 1))

    def test_3d(self):
        s = IndexSpace.grid(4, 4, 4)
        p = Partition.by_blocks(s, (2, 2, 2))
        assert p.n_colors == 8 and p.is_complete and p.is_disjoint


class TestByField:
    def test_colors_assign_pieces(self):
        s = IndexSpace.linear(6)
        p = Partition.by_field(s, np.array([0, 1, 0, 2, 1, 0]))
        assert [pc.volume for pc in p] == [3, 2, 1]
        assert p.is_disjoint and p.is_complete

    def test_negative_colors_uncovered(self):
        s = IndexSpace.linear(4)
        p = Partition.by_field(s, np.array([0, -1, 1, 0]), n_colors=2)
        assert not p.is_complete
        assert p.is_disjoint

    def test_length_validated(self):
        with pytest.raises(ValueError):
            Partition.by_field(IndexSpace.linear(4), np.array([0, 1]))


class TestMetadata:
    def test_aliasing_detected(self):
        s = IndexSpace.linear(10)
        p = Partition.from_subsets(
            s, [Subset.interval(s, 0, 5), Subset.interval(s, 5, 9)]
        )
        assert not p.is_disjoint
        assert p.is_complete

    def test_incomplete_detected(self):
        s = IndexSpace.linear(10)
        p = Partition.from_subsets(s, [Subset.interval(s, 0, 3)])
        assert p.is_disjoint
        assert not p.is_complete

    def test_foreign_subset_rejected(self):
        s, t = IndexSpace.linear(10), IndexSpace.linear(10)
        with pytest.raises(ValueError):
            Partition.from_subsets(s, [Subset.full(t)])

    def test_color_of(self):
        s = IndexSpace.linear(6)
        p = Partition.equal(s, 2)
        np.testing.assert_array_equal(p.color_of(), [0, 0, 0, 1, 1, 1])

    def test_color_of_marks_uncovered(self):
        s = IndexSpace.linear(4)
        p = Partition.from_subsets(s, [Subset.interval(s, 1, 2)])
        np.testing.assert_array_equal(p.color_of(), [-1, 0, 0, -1])

    def test_iteration_and_len(self):
        p = Partition.equal(IndexSpace.linear(8), 4)
        assert len(p) == 4
        assert len(list(p)) == 4
        assert p[0].volume == 2


@given(
    volume=st.integers(1, 200),
    n_pieces=st.integers(1, 16),
)
def test_equal_partition_always_complete_disjoint(volume, n_pieces):
    if n_pieces > volume:
        n_pieces = volume
    s = IndexSpace.linear(volume)
    p = Partition.equal(s, n_pieces)
    assert p.is_disjoint and p.is_complete
    assert sum(pc.volume for pc in p) == volume
    # Recompute metadata from scratch (bypass constructor hints).
    q = Partition.from_subsets(s, list(p))
    assert q.is_disjoint and q.is_complete


@given(
    colors=st.lists(st.integers(0, 4), min_size=1, max_size=40),
)
def test_by_field_piece_membership(colors):
    s = IndexSpace.linear(len(colors))
    p = Partition.by_field(s, np.array(colors), n_colors=5)
    for c in range(5):
        expected = {i for i, col in enumerate(colors) if col == c}
        assert set(p[c].indices) == expected
