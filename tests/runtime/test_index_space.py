"""Index spaces: identity semantics and coordinate conversions."""

import numpy as np
import pytest

from repro.runtime import IndexSpace
from repro.runtime.geometry import Rect


def test_linear_constructor():
    s = IndexSpace.linear(100)
    assert s.volume == 100
    assert s.dim == 1
    assert s.shape == (100,)


def test_grid_constructor():
    s = IndexSpace.grid(4, 5, 6)
    assert s.volume == 120
    assert s.dim == 3


def test_nonpositive_sizes_raise():
    with pytest.raises(ValueError):
        IndexSpace.linear(0)
    with pytest.raises(ValueError):
        IndexSpace.grid(4, 0)


def test_empty_rect_raises():
    with pytest.raises(ValueError):
        IndexSpace(Rect((0,), (-1,)))


def test_identity_equality():
    """Two spaces with identical bounds are distinct (Legion semantics)."""
    a = IndexSpace.linear(10)
    b = IndexSpace.linear(10)
    assert a != b
    assert a == a
    assert len({a, b}) == 2


def test_default_names_unique():
    a, b = IndexSpace.linear(3), IndexSpace.linear(3)
    assert a.name != b.name
    assert IndexSpace.linear(3, name="D").name == "D"


def test_all_linear_and_contains():
    s = IndexSpace.grid(3, 3)
    np.testing.assert_array_equal(s.all_linear(), np.arange(9))
    np.testing.assert_array_equal(
        s.contains_linear(np.array([-1, 0, 8, 9])), [False, True, True, False]
    )


def test_linearize_delinearize_roundtrip():
    s = IndexSpace.grid(5, 7)
    lin = np.arange(35)
    coords = s.delinearize(lin)
    np.testing.assert_array_equal(s.linearize(coords), lin)


def test_len():
    assert len(IndexSpace.linear(42)) == 42
