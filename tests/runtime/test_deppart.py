"""Dependent partitioning: relations and the image/preimage operators
(paper equations (3) and (4))."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import (
    ComputedRelation,
    FunctionalRelation,
    IdentityRelation,
    IndexSpace,
    IntervalRelation,
    PairsRelation,
    Partition,
    Subset,
    image,
    image_subset,
    preimage,
    preimage_subset,
)


def brute_image(pairs, src):
    return sorted({j for i, j in pairs if i in set(src)})


def brute_preimage(pairs, dst):
    return sorted({i for i, j in pairs if j in set(dst)})


@pytest.fixture
def spaces():
    return IndexSpace.linear(12, name="I"), IndexSpace.linear(8, name="J")


class TestFunctionalRelation:
    def test_image(self, spaces):
        I, J = spaces
        values = np.arange(12) % 8
        rel = FunctionalRelation(I, J, values)
        np.testing.assert_array_equal(rel.image_indices(np.array([0, 8])), [0])
        np.testing.assert_array_equal(rel.image_indices(np.array([1, 2])), [1, 2])

    def test_preimage_interval_and_scattered(self, spaces):
        I, J = spaces
        values = np.arange(12) % 8
        rel = FunctionalRelation(I, J, values)
        np.testing.assert_array_equal(rel.preimage_indices(np.array([0, 1])), [0, 1, 8, 9])
        np.testing.assert_array_equal(rel.preimage_indices(np.array([0, 5])), [0, 5, 8])

    def test_pairs(self, spaces):
        I, J = spaces
        rel = FunctionalRelation(I, J, np.arange(12) % 8)
        assert rel.pairs().shape == (12, 2)

    def test_validation(self, spaces):
        I, J = spaces
        with pytest.raises(ValueError):
            FunctionalRelation(I, J, np.zeros(5, dtype=np.int64))
        with pytest.raises(ValueError):
            FunctionalRelation(I, J, np.full(12, 8))


class TestIntervalRelation:
    """The rowptr shape: target j relates to source interval [s[j], e[j])."""

    def test_csr_style(self):
        K = IndexSpace.linear(10)
        R = IndexSpace.linear(4)
        rowptr = np.array([0, 3, 3, 7, 10])
        rel = IntervalRelation(K, R, rowptr[:-1], rowptr[1:])
        assert rel.monotone
        # image: kernel points -> owning rows
        np.testing.assert_array_equal(rel.image_indices(np.array([0, 2])), [0])
        np.testing.assert_array_equal(rel.image_indices(np.array([3, 9])), [2, 3])
        # preimage: rows -> kernel intervals (row 1 is empty)
        np.testing.assert_array_equal(rel.preimage_indices(np.array([1])), [])
        np.testing.assert_array_equal(rel.preimage_indices(np.array([0, 2])), [0, 1, 2, 3, 4, 5, 6])

    def test_non_monotone_overlapping_intervals(self):
        K = IndexSpace.linear(6)
        R = IndexSpace.linear(2)
        rel = IntervalRelation(K, R, np.array([0, 2]), np.array([4, 6]))
        # Point 3 belongs to both targets.
        np.testing.assert_array_equal(rel.image_indices(np.array([3])), [0, 1])

    def test_pairs_match_brute_force(self):
        K = IndexSpace.linear(7)
        R = IndexSpace.linear(3)
        rel = IntervalRelation(K, R, np.array([0, 2, 5]), np.array([2, 5, 7]))
        pairs = {tuple(p) for p in rel.pairs()}
        assert pairs == {(0, 0), (1, 0), (2, 1), (3, 1), (4, 1), (5, 2), (6, 2)}

    def test_validation(self):
        K, R = IndexSpace.linear(5), IndexSpace.linear(2)
        with pytest.raises(ValueError):
            IntervalRelation(K, R, np.array([0, 3]), np.array([2, 2]))  # end < start
        with pytest.raises(ValueError):
            IntervalRelation(K, R, np.array([0, 3]), np.array([2, 6]))  # out of bounds


class TestPairsRelation:
    def test_many_to_many(self):
        I, J = IndexSpace.linear(4), IndexSpace.linear(4)
        pairs = np.array([[0, 0], [0, 1], [1, 1], [3, 0]])
        rel = PairsRelation(I, J, pairs)
        np.testing.assert_array_equal(rel.image_indices(np.array([0])), [0, 1])
        np.testing.assert_array_equal(rel.preimage_indices(np.array([0])), [0, 3])
        np.testing.assert_array_equal(rel.preimage_indices(np.array([2])), [])

    def test_bounds_validated(self):
        I, J = IndexSpace.linear(2), IndexSpace.linear(2)
        with pytest.raises(ValueError):
            PairsRelation(I, J, np.array([[2, 0]]))
        with pytest.raises(ValueError):
            PairsRelation(I, J, np.array([[0, 0, 0]]))


class TestComputedRelation:
    def test_forward_backward(self):
        I, J = IndexSpace.linear(8), IndexSpace.linear(4)
        rel = ComputedRelation(
            I, J,
            forward=lambda k: k // 2,
            backward=lambda j: np.concatenate([2 * j, 2 * j + 1]),
        )
        np.testing.assert_array_equal(rel.image_indices(np.array([4, 5])), [2])
        np.testing.assert_array_equal(rel.preimage_indices(np.array([0])), [0, 1])

    def test_backward_fallback_scans_forward(self):
        I, J = IndexSpace.linear(8), IndexSpace.linear(4)
        rel = ComputedRelation(I, J, forward=lambda k: k // 2)
        np.testing.assert_array_equal(rel.preimage_indices(np.array([3])), [6, 7])

    def test_negative_forward_means_unrelated(self):
        I, J = IndexSpace.linear(4), IndexSpace.linear(4)
        rel = ComputedRelation(I, J, forward=lambda k: np.where(k % 2 == 0, k, -1))
        np.testing.assert_array_equal(rel.image_indices(np.arange(4)), [0, 2])


class TestInverse:
    def test_inverse_swaps_operations(self):
        I, J = IndexSpace.linear(6), IndexSpace.linear(3)
        rel = FunctionalRelation(I, J, np.arange(6) % 3)
        inv = rel.inverse()
        assert inv.source is J and inv.target is I
        np.testing.assert_array_equal(
            inv.image_indices(np.array([0])), rel.preimage_indices(np.array([0]))
        )
        assert inv.inverse() is rel

    def test_identity(self):
        s = IndexSpace.linear(5)
        rel = IdentityRelation(s)
        np.testing.assert_array_equal(rel.image_indices(np.array([2, 4])), [2, 4])
        np.testing.assert_array_equal(rel.pairs()[:, 0], rel.pairs()[:, 1])


class TestProjectionOperators:
    def test_image_of_partition(self):
        I, J = IndexSpace.linear(8), IndexSpace.linear(4)
        rel = FunctionalRelation(I, J, np.arange(8) % 4)
        P = Partition.equal(I, 2)
        Q = image(rel, P)
        assert Q.parent is J
        np.testing.assert_array_equal(Q[0].indices, [0, 1, 2, 3])

    def test_preimage_of_partition(self):
        I, J = IndexSpace.linear(8), IndexSpace.linear(4)
        rel = FunctionalRelation(I, J, np.arange(8) % 4)
        Q = Partition.equal(J, 2)
        P = preimage(rel, Q)
        np.testing.assert_array_equal(P[0].indices, [0, 1, 4, 5])
        np.testing.assert_array_equal(P[1].indices, [2, 3, 6, 7])

    def test_space_mismatch_raises(self):
        I, J = IndexSpace.linear(8), IndexSpace.linear(4)
        rel = FunctionalRelation(I, J, np.arange(8) % 4)
        with pytest.raises(ValueError):
            image(rel, Partition.equal(J, 2))
        with pytest.raises(ValueError):
            preimage(rel, Partition.equal(I, 2))
        with pytest.raises(ValueError):
            image_subset(rel, Subset.full(J))
        with pytest.raises(ValueError):
            preimage_subset(rel, Subset.full(I))


# -- property-based cross-validation of every relation kind -----------------


@st.composite
def functional_relations(draw):
    n_src = draw(st.integers(1, 20))
    n_dst = draw(st.integers(1, 10))
    values = draw(
        st.lists(st.integers(0, n_dst - 1), min_size=n_src, max_size=n_src)
    )
    I, J = IndexSpace.linear(n_src), IndexSpace.linear(n_dst)
    rel = FunctionalRelation(I, J, np.array(values, dtype=np.int64))
    return rel


@given(rel=functional_relations(), data=st.data())
@settings(max_examples=60)
def test_image_preimage_match_brute_force(rel, data):
    pairs = [tuple(p) for p in rel.pairs()]
    src = data.draw(
        st.lists(st.integers(0, rel.source.volume - 1), max_size=8, unique=True)
    )
    dst = data.draw(
        st.lists(st.integers(0, rel.target.volume - 1), max_size=8, unique=True)
    )
    np.testing.assert_array_equal(
        rel.image_indices(np.array(sorted(src), dtype=np.int64)), brute_image(pairs, src)
    )
    np.testing.assert_array_equal(
        rel.preimage_indices(np.array(sorted(dst), dtype=np.int64)),
        brute_preimage(pairs, dst),
    )


@given(rel=functional_relations())
@settings(max_examples=40)
def test_galois_connection(rel):
    """image(preimage(Q)) ⊆ Q fails in general, but
    preimage(image(P)) ⊇ P holds for total relations (every source point
    relates to something), and image(preimage(image(P))) = image(P)."""
    I = rel.source
    P = Subset.interval(I, 0, I.volume - 1)
    img = rel.image_indices(P.indices)
    pre = rel.preimage_indices(img)
    assert set(P.indices).issubset(set(pre))
    img2 = rel.image_indices(pre)
    np.testing.assert_array_equal(img, img2)
