"""The runtime facade: eager execution, futures, dynamic tracing."""

import numpy as np
import pytest

from repro.runtime import (
    IndexLauncher,
    IndexSpace,
    Partition,
    Privilege,
    ProcKind,
    Runtime,
    ShardedMapper,
    Subset,
    TaskLauncher,
    lassen,
)


def make_runtime(enable_tracing=True):
    m = lassen(1)
    return Runtime(machine=m, mapper=ShardedMapper(m), enable_tracing=enable_tracing)


@pytest.fixture
def rt():
    return make_runtime()


@pytest.fixture
def vec(rt):
    region = rt.create_region(IndexSpace.linear(256), {"v": np.float64})
    rt.allocate(region, "v", fill=1.0)
    return region


def double_task(region, piece, hint):
    def body(ctx):
        ctx[0].write(ctx[0].read() * 2.0)

    tl = TaskLauncher("double", body, proc_kind=ProcKind.GPU, owner_hint=hint)
    tl.add_requirement(region, ["v"], piece, Privilege.READ_WRITE)
    return tl


class TestEagerExecution:
    def test_body_runs_immediately(self, rt, vec):
        rt.execute(double_task(vec, Subset.full(vec.ispace), 0))
        assert (rt.store.raw(vec, "v") == 2.0).all()

    def test_future_value(self, rt, vec):
        def body(ctx):
            return float(ctx[0].read().sum())

        tl = TaskLauncher("sum", body)
        tl.add_requirement(vec, ["v"], Subset.full(vec.ispace), Privilege.READ_ONLY)
        f = rt.execute(tl)
        assert f.get() == 256.0
        assert rt.wait_for(f) == 256.0
        assert rt.future_ready_time(f) > 0

    def test_index_launch_executes_all_points(self, rt, vec):
        part = Partition.equal(vec.ispace, 4)

        def make_point(p):
            return double_task(vec, part[p], p)

        futures = rt.execute_index(IndexLauncher("doubles", 4, make_point))
        assert len(futures) == 4
        assert (rt.store.raw(vec, "v") == 2.0).all()

    def test_index_launch_reduction(self, rt, vec):
        part = Partition.equal(vec.ispace, 4)

        def make_point(p):
            def body(ctx):
                return float(ctx[0].read().sum())

            tl = TaskLauncher("partial", body, owner_hint=p)
            tl.add_requirement(vec, ["v"], part[p], Privilege.READ_ONLY)
            return tl

        futures = rt.execute_index(
            IndexLauncher("sum", 4, make_point, reduction=sum)
        )
        assert len(futures) == 1
        assert futures[0].get() == 256.0


class TestTracing:
    def run_iteration(self, rt, vec, part):
        for p in range(part.n_colors):
            rt.execute(double_task(vec, part[p], p), point=p)

    def test_replay_pays_reduced_analysis(self, rt, vec):
        part = Partition.equal(vec.ispace, 4)
        times = []
        for it in range(4):
            t0 = rt.sim_time
            rt.begin_trace("loop")
            self.run_iteration(rt, vec, part)
            rt.end_trace("loop")
            times.append(rt.sim_time - t0)
        # Iteration 0 records (fresh analysis, zero traced tasks); the
        # three replays run all 4 tasks each at the traced cost.
        assert rt.engine.n_traced_tasks == 3 * 4
        assert min(times[1:]) < times[0]

    def test_divergent_trace_falls_back_to_fresh(self, rt, vec):
        part = Partition.equal(vec.ispace, 4)
        rt.begin_trace("t")
        self.run_iteration(rt, vec, part)
        rt.end_trace("t")
        # Replay with a different shape: diverges, re-records fresh.
        other = Partition.equal(vec.ispace, 2)
        base = rt.engine.n_traced_tasks
        rt.begin_trace("t")
        self.run_iteration(rt, vec, other)
        rt.end_trace("t")
        assert rt.engine.n_traced_tasks == base  # nothing replayed
        # The new recording becomes the valid trace: next run replays.
        rt.begin_trace("t")
        self.run_iteration(rt, vec, other)
        rt.end_trace("t")
        assert rt.engine.n_traced_tasks == base + 2

    def test_numerics_identical_with_and_without_tracing(self, vec):
        results = []
        for tracing in (True, False):
            rt = make_runtime(enable_tracing=tracing)
            region = rt.create_region(IndexSpace.linear(64), {"v": np.float64})
            rt.allocate(region, "v", fill=1.0)
            part = Partition.equal(region.ispace, 4)
            for _ in range(3):
                rt.begin_trace("x")
                for p in range(4):
                    rt.execute(double_task(region, part[p], p), point=p)
                rt.end_trace("x")
            results.append(rt.store.raw(region, "v").copy())
        np.testing.assert_array_equal(results[0], results[1])

    def test_nested_traces_rejected(self, rt):
        rt.begin_trace("a")
        with pytest.raises(RuntimeError):
            rt.begin_trace("b")
        rt.end_trace("a")

    def test_mismatched_end_rejected(self, rt):
        with pytest.raises(RuntimeError):
            rt.end_trace("never-started")

    def test_shorter_replay_invalidates(self, rt, vec):
        part = Partition.equal(vec.ispace, 4)
        rt.begin_trace("s")
        self.run_iteration(rt, vec, part)
        rt.end_trace("s")
        # Replay fewer tasks than recorded: trace invalidated, next
        # begin_trace records afresh (no crash, numerics fine).
        rt.begin_trace("s")
        rt.execute(double_task(vec, part[0], 0), point=0)
        rt.end_trace("s")
        rt.begin_trace("s")
        self.run_iteration(rt, vec, part)
        rt.end_trace("s")


class TestAttachIngest:
    def test_attach_solves_in_place(self, rt):
        region = rt.create_region(IndexSpace.linear(8), {"v": np.float64})
        user_data = np.arange(8, dtype=np.float64)
        rt.attach(region, "v", user_data)
        rt.execute(double_task(region, Subset.full(region.ispace), 0))
        np.testing.assert_array_equal(user_data, np.arange(8) * 2.0)
