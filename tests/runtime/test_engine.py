"""Discrete-event engine: dependences, data movement, overlap."""

import numpy as np
import pytest

from repro.runtime import (
    IndexSpace,
    Partition,
    Privilege,
    ProcKind,
    Runtime,
    ShardedMapper,
    Subset,
    TaskLauncher,
    lassen,
)


def make_runtime(nodes=2, keep_timeline=True):
    m = lassen(nodes)
    return Runtime(machine=m, mapper=ShardedMapper(m), keep_timeline=keep_timeline)


def launch(rt, name, region, subset, privilege, hint=0, flops=0.0,
           body=None, deps=(), kind=ProcKind.GPU):
    if body is None:
        def body(ctx):  # noqa: D401
            return None
    tl = TaskLauncher(
        name, body, proc_kind=kind, flops=flops, owner_hint=hint,
        future_deps=list(deps),
    )
    tl.add_requirement(region, ["v"], subset, privilege)
    return rt.execute(tl)


@pytest.fixture
def setup():
    rt = make_runtime()
    region = rt.create_region(IndexSpace.linear(1 << 16), {"v": np.float64})
    rt.allocate(region, "v")
    part = Partition.equal(region.ispace, 8)
    return rt, region, part


class TestDependences:
    def entry(self, rt, idx):
        return rt.engine.timeline[idx]

    def test_read_after_write_ordered(self, setup):
        rt, region, part = setup
        launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD, hint=0)
        launch(rt, "r", region, part[0], Privilege.READ_ONLY, hint=1)
        w, r = rt.engine.timeline[-2:]
        assert r.start >= w.finish

    def test_disjoint_pieces_run_concurrently(self, setup):
        rt, region, part = setup
        launch(rt, "w0", region, part[0], Privilege.WRITE_DISCARD, hint=0, flops=1e9)
        launch(rt, "w1", region, part[1], Privilege.WRITE_DISCARD, hint=1, flops=1e9)
        a, b = rt.engine.timeline[-2:]
        # Different devices, no interference: they overlap in time.
        assert b.start < a.finish

    def test_write_after_read_ordered(self, setup):
        rt, region, part = setup
        launch(rt, "init", region, part[0], Privilege.WRITE_DISCARD, hint=0)
        launch(rt, "r", region, part[0], Privilege.READ_ONLY, hint=1, flops=1e12)
        launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD, hint=2)
        r, w = rt.engine.timeline[-2:]
        assert w.start >= r.finish

    def test_write_after_write_ordered(self, setup):
        rt, region, part = setup
        launch(rt, "w1", region, part[0], Privilege.WRITE_DISCARD, hint=0, flops=1e12)
        launch(rt, "w2", region, part[0], Privilege.WRITE_DISCARD, hint=1)
        w1, w2 = rt.engine.timeline[-2:]
        assert w2.start >= w1.finish

    def test_reductions_commute(self, setup):
        rt, region, part = setup
        launch(rt, "init", region, part[0], Privilege.WRITE_DISCARD, hint=0)
        launch(rt, "red1", region, part[0], Privilege.REDUCE, hint=1, flops=1e11)
        launch(rt, "red2", region, part[0], Privilege.REDUCE, hint=2, flops=1e11)
        r1, r2 = rt.engine.timeline[-2:]
        # Concurrent reductions to the same subset are allowed.
        assert r2.start < r1.finish

    def test_reader_waits_for_reductions(self, setup):
        rt, region, part = setup
        launch(rt, "init", region, part[0], Privilege.WRITE_DISCARD, hint=0)
        launch(rt, "red", region, part[0], Privilege.REDUCE, hint=1, flops=1e11)
        launch(rt, "r", region, part[0], Privilege.READ_ONLY, hint=2)
        red, r = rt.engine.timeline[-2:]
        assert r.start >= red.finish

    def test_overlapping_subsets_conflict(self, setup):
        rt, region, part = setup
        big = Subset.interval(region.ispace, 0, 20000)
        launch(rt, "w_big", region, big, Privilege.WRITE_DISCARD, hint=0, flops=1e12)
        launch(rt, "r_piece", region, part[0], Privilege.READ_ONLY, hint=1)
        w, r = rt.engine.timeline[-2:]
        assert r.start >= w.finish

    def test_future_dependency_gates_start(self, setup):
        rt, region, part = setup
        f = launch(rt, "producer", region, part[0], Privilege.WRITE_DISCARD,
                   hint=0, flops=1e12)
        launch(rt, "consumer", region, part[1], Privilege.WRITE_DISCARD,
               hint=1, deps=[f])
        p, c = rt.engine.timeline[-2:]
        assert c.start >= p.finish


class TestDataMovement:
    def test_local_read_moves_nothing(self, setup):
        rt, region, part = setup
        launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD, hint=0)
        before = rt.engine.total_comm_bytes
        launch(rt, "r", region, part[0], Privilege.READ_ONLY, hint=0)
        assert rt.engine.total_comm_bytes == before

    def test_remote_read_moves_exactly_the_subset(self, setup):
        rt, region, part = setup
        launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD, hint=0)
        before = rt.engine.total_comm_bytes
        launch(rt, "r", region, part[0], Privilege.READ_ONLY, hint=1)
        moved = rt.engine.total_comm_bytes - before
        assert moved == part[0].volume * 8

    def test_partial_remote_read_counts_remote_part_only(self, setup):
        rt, region, part = setup
        launch(rt, "w0", region, part[0], Privilege.WRITE_DISCARD, hint=0)
        launch(rt, "w1", region, part[1], Privilege.WRITE_DISCARD, hint=1)
        # Read pieces 0+1 from device 0: only piece 1 is remote.
        both = part[0].union(part[1])
        before = rt.engine.total_comm_bytes
        launch(rt, "r", region, both, Privilege.READ_ONLY, hint=0)
        moved = rt.engine.total_comm_bytes - before
        assert moved == part[1].volume * 8

    def test_read_only_data_cached_across_repeats(self, setup):
        rt, region, part = setup
        launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD, hint=0)
        launch(rt, "r", region, part[0], Privilege.READ_ONLY, hint=1)
        before = rt.engine.total_comm_bytes
        launch(rt, "r2", region, part[0], Privilege.READ_ONLY, hint=1)
        assert rt.engine.total_comm_bytes == before  # cached copy reused

    def test_write_invalidates_cached_copies(self, setup):
        rt, region, part = setup
        launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD, hint=0)
        launch(rt, "r", region, part[0], Privilege.READ_ONLY, hint=1)
        launch(rt, "w2", region, part[0], Privilege.WRITE_DISCARD, hint=0)
        before = rt.engine.total_comm_bytes
        launch(rt, "r2", region, part[0], Privilege.READ_ONLY, hint=1)
        assert rt.engine.total_comm_bytes - before == part[0].volume * 8

    def test_distribute_declares_initial_placement(self, setup):
        rt, region, part = setup
        dev_of = rt.mapper.device_ids
        rt.distribute(region, "v", [(part[c], dev_of[c]) for c in range(8)])
        before = rt.engine.total_comm_bytes
        launch(rt, "r", region, part[3], Privilege.READ_ONLY, hint=3)
        assert rt.engine.total_comm_bytes == before

    def test_transfers_overlap_compute(self, setup):
        """Communication occupies channels, not processors (paper P1)."""
        rt, region, part = setup
        launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD, hint=0)
        # A long-running unrelated task on the destination device...
        region2 = rt.create_region(IndexSpace.linear(1024), {"v": np.float64})
        rt.allocate(region2, "v")
        launch(rt, "busy", region2, Subset.full(region2.ispace),
               Privilege.WRITE_DISCARD, hint=1, flops=1e12)
        # ...does not delay the incoming transfer, only the compute.
        launch(rt, "r", region, part[0], Privilege.READ_ONLY, hint=1)
        busy, read = rt.engine.timeline[-2:]
        assert read.start >= busy.finish  # device serializes compute
        # but the iteration would have been longer if the transfer also
        # occupied the device; verify the transfer happened during 'busy'.
        assert read.comm_time == 0.0 or read.start == pytest.approx(busy.finish)


class TestUtilityPipeline:
    def test_analysis_overhead_gates_small_tasks(self):
        rt = make_runtime(nodes=1)
        region = rt.create_region(IndexSpace.linear(64), {"v": np.float64})
        rt.allocate(region, "v")
        sub = Subset.full(region.ispace)
        t0 = rt.sim_time
        n = 32
        for i in range(n):
            launch(rt, "tiny", region, sub, Privilege.READ_ONLY, hint=0)
        elapsed = rt.sim_time - t0
        # 32 sequential analyses over 4 utility slots at fresh cost.
        m = rt.machine
        assert elapsed >= (n / 4) * m.analysis_overhead * 0.9

    def test_node_busy_accounting(self, setup):
        rt, region, part = setup
        launch(rt, "w", region, part[0], Privilege.WRITE_DISCARD, hint=0, flops=1e9)
        busy = rt.engine.node_busy_time()
        assert busy[0] > 0
        assert busy.shape == (2,)
