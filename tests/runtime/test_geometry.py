"""Geometry primitives: points and inclusive-bound rectangles."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.runtime.geometry import Point, Rect


class TestPoint:
    def test_construction_from_args(self):
        p = Point(1, 2, 3)
        assert p == (1, 2, 3)
        assert p.dim == 3

    def test_construction_from_sequence(self):
        assert Point((4, 5)) == (4, 5)
        assert Point(np.array([7, 8])) == (7, 8)

    def test_arithmetic(self):
        assert Point(1, 2) + (3, 4) == Point(4, 6)
        assert Point(5, 5) - (1, 2) == Point(4, 3)

    def test_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2

    def test_repr(self):
        assert "1, 2" in repr(Point(1, 2))


class TestRect:
    def test_volume_inclusive_bounds(self):
        assert Rect((0,), (9,)).volume == 10
        assert Rect((0, 0), (3, 4)).volume == 20
        assert Rect((2, 3), (2, 3)).volume == 1

    def test_empty(self):
        r = Rect((0,), (-1,))
        assert r.empty and r.volume == 0

    def test_of_shape(self):
        r = Rect.of_shape(4, 5)
        assert r.lo == (0, 0) and r.hi == (3, 4)
        assert r.volume == 20

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            Rect((0, 0), (1,))

    def test_zero_dims_raises(self):
        with pytest.raises(ValueError):
            Rect((), ())

    def test_contains(self):
        r = Rect((1, 1), (3, 3))
        assert r.contains((2, 2))
        assert not r.contains((0, 2))
        assert not r.contains((2, 4))

    def test_contains_all_vectorized(self):
        r = Rect((0, 0), (2, 2))
        coords = np.array([[0, 0], [2, 2], [3, 0], [-1, 1]])
        np.testing.assert_array_equal(
            r.contains_all(coords), [True, True, False, False]
        )

    def test_linearize_row_major(self):
        r = Rect((0, 0), (2, 3))  # shape (3, 4)
        coords = np.array([[0, 0], [0, 3], [1, 0], [2, 3]])
        np.testing.assert_array_equal(r.linearize(coords), [0, 3, 4, 11])

    def test_linearize_with_offset_origin(self):
        r = Rect((5,), (9,))
        np.testing.assert_array_equal(r.linearize(np.array([5, 7, 9])), [0, 2, 4])

    def test_delinearize_roundtrip(self):
        r = Rect((1, 2, 3), (4, 6, 5))
        offs = np.arange(r.volume)
        coords = r.delinearize(offs)
        np.testing.assert_array_equal(r.linearize(coords), offs)

    def test_intersection(self):
        a = Rect((0, 0), (4, 4))
        b = Rect((2, 3), (6, 8))
        c = a.intersection(b)
        assert c.lo == (2, 3) and c.hi == (4, 4)
        assert a.overlaps(b)

    def test_disjoint_intersection_empty(self):
        a = Rect((0,), (3,))
        b = Rect((5,), (9,))
        assert a.intersection(b).empty
        assert not a.overlaps(b)

    def test_points_iteration(self):
        r = Rect((0, 0), (1, 1))
        assert list(r) == [Point(0, 0), Point(0, 1), Point(1, 0), Point(1, 1)]

    def test_equality_and_hash(self):
        assert Rect((0,), (3,)) == Rect((0,), (3,))
        assert hash(Rect((0,), (3,))) == hash(Rect((0,), (3,)))
        assert Rect((0,), (3,)) != Rect((0,), (4,))


@given(
    shape=st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=3),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_linearize_bijective(shape, seed):
    """Linearization is a bijection rect → range(volume)."""
    r = Rect.of_shape(*shape)
    rng = np.random.default_rng(seed)
    offs = rng.permutation(r.volume)
    coords = r.delinearize(offs)
    assert r.contains_all(coords).all()
    np.testing.assert_array_equal(r.linearize(coords), offs)


@given(
    lo=st.lists(st.integers(-5, 5), min_size=2, max_size=2),
    extent=st.lists(st.integers(0, 5), min_size=2, max_size=2),
    lo2=st.lists(st.integers(-5, 5), min_size=2, max_size=2),
    extent2=st.lists(st.integers(0, 5), min_size=2, max_size=2),
)
def test_intersection_commutes_and_bounds(lo, extent, lo2, extent2):
    a = Rect(tuple(lo), tuple(l + e for l, e in zip(lo, extent)))
    b = Rect(tuple(lo2), tuple(l + e for l, e in zip(lo2, extent2)))
    ab = a.intersection(b)
    ba = b.intersection(a)
    assert ab.volume == ba.volume
    assert ab.volume <= min(a.volume, b.volume)
