"""Logical regions, field spaces, accessors and privileges."""

import numpy as np
import pytest

from repro.runtime import (
    FieldSpace,
    IndexSpace,
    LogicalRegion,
    Privilege,
    RegionAccessor,
    RegionStore,
    Subset,
)


@pytest.fixture
def region():
    return LogicalRegion(
        IndexSpace.linear(16), FieldSpace({"v": np.float64, "idx": np.int32})
    )


@pytest.fixture
def store(region):
    s = RegionStore()
    s.allocate(region, "v")
    return s


class TestFieldSpace:
    def test_dtypes(self):
        fs = FieldSpace({"a": np.float64, "b": np.int32})
        assert fs.dtype("a") == np.float64
        assert fs.itemsize("a") == 8 and fs.itemsize("b") == 4
        assert "a" in fs and "c" not in fs
        assert set(fs) == {"a", "b"}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FieldSpace({})


class TestRegion:
    def test_field_bytes(self, region):
        assert region.field_bytes("v") == 16 * 8
        assert region.field_bytes("idx", 4) == 16

    def test_identity_equality(self):
        ispace = IndexSpace.linear(4)
        fs = FieldSpace({"v": np.float64})
        a, b = LogicalRegion(ispace, fs), LogicalRegion(ispace, fs)
        assert a != b and a == a


class TestStore:
    def test_attach_in_place_is_zero_copy(self, region):
        store = RegionStore()
        data = np.arange(16, dtype=np.float64)
        store.attach(region, "v", data)
        # Mutating through the store is visible in the user's array: the
        # in-place ingestion of paper P4.
        store.raw(region, "v")[0] = 99.0
        assert data[0] == 99.0

    def test_attach_validates_size_and_dtype(self, region):
        store = RegionStore()
        with pytest.raises(ValueError):
            store.attach(region, "v", np.zeros(15))
        with pytest.raises(TypeError):
            store.attach(region, "v", np.zeros(16, dtype=np.float32))

    def test_allocate_fill(self, region):
        store = RegionStore()
        store.allocate(region, "v", fill=3.5)
        assert (store.raw(region, "v") == 3.5).all()

    def test_missing_field_raises(self, region):
        store = RegionStore()
        with pytest.raises(KeyError):
            store.raw(region, "v")
        assert not store.has(region, "v")


class TestAccessor:
    def test_contiguous_read_is_view(self, region, store):
        acc = RegionAccessor(
            store, region, "v", Subset.interval(region.ispace, 4, 7), Privilege.READ_ONLY
        )
        view = acc.read()
        assert view.base is store.raw(region, "v")
        assert acc.n_points == 4
        assert acc.n_bytes == 32

    def test_scattered_read_write(self, region, store):
        sub = Subset(region.ispace, np.array([1, 5, 9]))
        acc = RegionAccessor(store, region, "v", sub, Privilege.READ_WRITE)
        acc.write(np.array([1.0, 2.0, 3.0]))
        np.testing.assert_array_equal(acc.read(), [1.0, 2.0, 3.0])
        raw = store.raw(region, "v")
        assert raw[1] == 1.0 and raw[5] == 2.0 and raw[9] == 3.0
        assert raw[0] == 0.0

    def test_privilege_enforcement(self, region, store):
        sub = Subset.full(region.ispace)
        ro = RegionAccessor(store, region, "v", sub, Privilege.READ_ONLY)
        with pytest.raises(PermissionError):
            ro.write(np.zeros(16))
        wd = RegionAccessor(store, region, "v", sub, Privilege.WRITE_DISCARD)
        with pytest.raises(PermissionError):
            wd.read()
        red = RegionAccessor(store, region, "v", sub, Privilege.REDUCE)
        with pytest.raises(PermissionError):
            red.read()
        with pytest.raises(PermissionError):
            red.write(np.zeros(16))

    def test_reduce_add_accumulates(self, region, store):
        sub = Subset.interval(region.ispace, 0, 3)
        red = RegionAccessor(store, region, "v", sub, Privilege.REDUCE)
        red.reduce_add(np.ones(4))
        red.reduce_add(np.ones(4))
        np.testing.assert_array_equal(store.raw(region, "v")[:4], 2.0)

    def test_reduce_add_scattered_handles_duplicates(self, region, store):
        sub = Subset(region.ispace, np.array([2, 7]))
        red = RegionAccessor(store, region, "v", sub, Privilege.REDUCE)
        red.scatter_add(np.array([2, 2, 7]), np.array([1.0, 1.0, 5.0]))
        raw = store.raw(region, "v")
        assert raw[2] == 2.0 and raw[7] == 5.0

    def test_wrong_space_subset_rejected(self, region, store):
        other = IndexSpace.linear(16)
        with pytest.raises(ValueError):
            RegionAccessor(store, region, "v", Subset.full(other), Privilege.READ_ONLY)

    def test_unknown_field_rejected(self, region, store):
        with pytest.raises(KeyError):
            RegionAccessor(
                store, region, "nope", Subset.full(region.ispace), Privilege.READ_ONLY
            )


class TestPrivilegeEnum:
    def test_classification(self):
        assert Privilege.READ_ONLY.is_read and not Privilege.READ_ONLY.is_write
        assert Privilege.READ_WRITE.is_read and Privilege.READ_WRITE.is_write
        assert not Privilege.WRITE_DISCARD.is_read and Privilege.WRITE_DISCARD.is_write
        assert Privilege.REDUCE.is_write and not Privilege.REDUCE.is_read
