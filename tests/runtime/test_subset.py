"""Subsets: set algebra, contiguity fast paths, disjointness."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.runtime import IndexSpace, Subset


@pytest.fixture
def space():
    return IndexSpace.linear(100)


class TestConstruction:
    def test_from_indices_deduplicates_and_sorts(self, space):
        s = Subset(space, np.array([5, 3, 5, 7, 3]))
        np.testing.assert_array_equal(s.indices, [3, 5, 7])
        assert s.volume == 3

    def test_out_of_bounds_raises(self, space):
        with pytest.raises(ValueError):
            Subset(space, np.array([100]))
        with pytest.raises(ValueError):
            Subset(space, np.array([-1]))

    def test_interval(self, space):
        s = Subset.interval(space, 10, 19)
        assert s.volume == 10
        assert s.is_contiguous
        assert s.as_slice() == slice(10, 20)

    def test_interval_validation(self, space):
        with pytest.raises(ValueError):
            Subset.interval(space, 10, 5)
        with pytest.raises(ValueError):
            Subset.interval(space, 0, 100)

    def test_full_and_empty(self, space):
        assert Subset.full(space).volume == 100
        assert Subset.empty(space).is_empty
        assert Subset.empty(space).as_slice() is None

    def test_from_mask(self, space):
        mask = np.zeros(100, dtype=bool)
        mask[[2, 4, 8]] = True
        s = Subset.from_mask(space, mask)
        np.testing.assert_array_equal(s.indices, [2, 4, 8])
        np.testing.assert_array_equal(s.as_mask(), mask)

    def test_mask_length_validated(self, space):
        with pytest.raises(ValueError):
            Subset.from_mask(space, np.zeros(99, dtype=bool))


class TestContiguity:
    def test_gap_not_contiguous(self, space):
        s = Subset(space, np.array([1, 2, 4]))
        assert not s.is_contiguous
        assert s.as_slice() is None

    def test_singleton_contiguous(self, space):
        assert Subset(space, np.array([42])).is_contiguous

    def test_bounds(self, space):
        assert Subset(space, np.array([9, 3, 7])).bounds == (3, 9)
        assert Subset.empty(space).bounds is None


class TestAlgebra:
    def test_union(self, space):
        a = Subset(space, np.array([1, 3, 5]))
        b = Subset(space, np.array([3, 4]))
        np.testing.assert_array_equal(a.union(b).indices, [1, 3, 4, 5])

    def test_intersection_general(self, space):
        a = Subset(space, np.array([1, 3, 5, 9]))
        b = Subset(space, np.array([3, 9, 11]))
        np.testing.assert_array_equal(a.intersection(b).indices, [3, 9])

    def test_intersection_interval_fast_path(self, space):
        a = Subset.interval(space, 0, 50)
        b = Subset.interval(space, 40, 80)
        c = a.intersection(b)
        assert c.is_contiguous and c.bounds == (40, 50)

    def test_difference(self, space):
        a = Subset(space, np.array([1, 2, 3, 4]))
        b = Subset(space, np.array([2, 4, 6]))
        np.testing.assert_array_equal(a.difference(b).indices, [1, 3])

    def test_intersection_volume(self, space):
        a = Subset.interval(space, 0, 9)
        b = Subset.interval(space, 5, 14)
        assert a.intersection_volume(b) == 5
        assert a.intersection_volume(Subset.empty(space)) == 0

    def test_disjointness(self, space):
        a = Subset.interval(space, 0, 9)
        b = Subset.interval(space, 10, 19)
        c = Subset(space, np.array([9, 50]))
        assert a.is_disjoint_from(b)
        assert not a.is_disjoint_from(c)
        assert Subset.empty(space).is_disjoint_from(a)

    def test_issubset(self, space):
        a = Subset(space, np.array([2, 4]))
        b = Subset.interval(space, 0, 10)
        assert a.issubset(b)
        assert not b.issubset(a)

    def test_contains_point(self, space):
        s = Subset(space, np.array([2, 40, 77]))
        assert 40 in s and 41 not in s
        i = Subset.interval(space, 10, 20)
        assert 10 in i and 21 not in i

    def test_cross_space_rejected(self, space):
        other = IndexSpace.linear(100)
        with pytest.raises(ValueError):
            Subset.full(space).union(Subset.full(other))

    def test_value_equality(self, space):
        a = Subset(space, np.array([1, 2]))
        b = Subset(space, np.array([2, 1]))
        assert a == b
        assert a != Subset(space, np.array([1]))

    def test_coords_2d(self):
        grid = IndexSpace.grid(4, 4)
        s = Subset(grid, np.array([0, 5, 15]))
        np.testing.assert_array_equal(s.coords(), [[0, 0], [1, 1], [3, 3]])


@st.composite
def index_sets(draw, volume=60):
    n = draw(st.integers(0, 15))
    return draw(
        st.lists(st.integers(0, volume - 1), min_size=n, max_size=n)
    )


@given(a=index_sets(), b=index_sets())
def test_set_algebra_matches_python_sets(a, b):
    space = IndexSpace.linear(60)
    sa = Subset(space, np.array(a, dtype=np.int64))
    sb = Subset(space, np.array(b, dtype=np.int64))
    assert set(sa.union(sb).indices) == set(a) | set(b)
    assert set(sa.intersection(sb).indices) == set(a) & set(b)
    assert set(sa.difference(sb).indices) == set(a) - set(b)
    assert sa.is_disjoint_from(sb) == (not (set(a) & set(b)))
    assert sa.intersection_volume(sb) == len(set(a) & set(b))


@given(lo=st.integers(0, 50), hi=st.integers(0, 50))
def test_interval_detection(lo, hi):
    space = IndexSpace.linear(60)
    if lo > hi:
        lo, hi = hi, lo
    s = Subset(space, np.arange(lo, hi + 1))
    assert s.is_contiguous
    assert s.as_slice() == slice(lo, hi + 1)
