"""Color-wise partition set operations (Legion's create_partition_by_*)."""

import numpy as np
import pytest

from repro.runtime import (
    IndexSpace,
    Partition,
    Subset,
    partition_difference,
    partition_intersection,
    partition_union,
)
from repro.runtime.deppart import image
from repro.runtime.deppart import FunctionalRelation


@pytest.fixture
def space():
    return IndexSpace.linear(24)


@pytest.fixture
def blocks(space):
    return Partition.equal(space, 4)


@pytest.fixture
def shifted(space):
    """Blocks shifted by 3 (wrapping into the last piece)."""
    pieces = [
        Subset(space, (np.arange(6) + 3 + 6 * c) % 24) for c in range(4)
    ]
    return Partition.from_subsets(space, pieces)


def test_union_colorwise(space, blocks, shifted):
    u = partition_union(blocks, shifted)
    for c in range(4):
        expected = set(blocks[c].indices) | set(shifted[c].indices)
        assert set(u[c].indices) == expected


def test_intersection_colorwise(space, blocks, shifted):
    i = partition_intersection(blocks, shifted)
    for c in range(4):
        expected = set(blocks[c].indices) & set(shifted[c].indices)
        assert set(i[c].indices) == expected


def test_difference_gives_ghost_cells(space, blocks):
    """image(P) \\ P = the ghost cells of each piece — the classic
    dependent-partitioning halo construction."""
    # Nearest-neighbour relation on the space itself: i relates to i−1.
    rel_left = FunctionalRelation(space, space, np.maximum(np.arange(24) - 1, 0))
    ghosts_left = partition_difference(image(rel_left, blocks), blocks)
    # Interior piece c: its left ghost is the last cell of piece c-1.
    assert set(ghosts_left[1].indices) == {5}
    assert set(ghosts_left[0].indices) == set()


def test_mismatched_partitions_rejected(space, blocks):
    other_space = IndexSpace.linear(24)
    foreign = Partition.equal(other_space, 4)
    with pytest.raises(ValueError):
        partition_union(blocks, foreign)
    fewer = Partition.equal(space, 2)
    with pytest.raises(ValueError):
        partition_intersection(blocks, fewer)


def test_union_of_disjoint_complete_stays_complete(space, blocks):
    u = partition_union(blocks, blocks)
    assert u.is_complete
    assert u.is_disjoint


def test_difference_with_self_is_empty(space, blocks):
    d = partition_difference(blocks, blocks)
    assert all(p.is_empty for p in d)
