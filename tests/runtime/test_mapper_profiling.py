"""Mappers and profiling utilities."""

import numpy as np
import pytest

from repro.runtime import (
    ProcKind,
    RoundRobinMapper,
    ShardedMapper,
    TableMapper,
    TaskRecord,
    lassen,
)
from repro.runtime.engine import TimelineEntry
from repro.runtime.profiling import device_utilization, profile_by_name, window_times


def record(hint=None, point=None, kind=ProcKind.GPU):
    return TaskRecord(
        task_id=TaskRecord.next_id(),
        name="t",
        requirements=[],
        proc_kind=kind,
        flops=0.0,
        bytes_touched=0.0,
        owner_hint=hint,
        future_dep_uids=[],
        future_uid=None,
        point=point,
    )


class TestRoundRobin:
    def test_hint_is_stable(self):
        m = lassen(2)
        mapper = RoundRobinMapper(m)
        d1 = mapper.map_task(record(hint=3))
        d2 = mapper.map_task(record(hint=3))
        assert d1 == d2

    def test_unhinted_rotate(self):
        m = lassen(2)
        mapper = RoundRobinMapper(m)
        devs = {mapper.map_task(record()) for _ in range(8)}
        assert len(devs) == 8

    def test_point_used_as_hint(self):
        m = lassen(2)
        mapper = RoundRobinMapper(m)
        assert mapper.map_task(record(point=2)) == mapper.map_task(record(hint=2))

    def test_cpu_kind_respected(self):
        m = lassen(2)
        mapper = RoundRobinMapper(m)
        d = mapper.map_task(record(hint=0, kind=ProcKind.CPU))
        assert m.device(d).kind is ProcKind.CPU


class TestSharded:
    def test_hint_indexes_device_list(self):
        m = lassen(2)
        mapper = ShardedMapper(m)
        assert mapper.map_task(record(hint=0)) == m.gpus[0].device_id
        assert mapper.map_task(record(hint=9)) == m.gpus[1].device_id  # wraps

    def test_cross_kind_falls_back(self):
        m = lassen(2)
        mapper = ShardedMapper(m)
        d = mapper.map_task(record(hint=0, kind=ProcKind.CPU))
        assert m.device(d).kind is ProcKind.CPU

    def test_gpuless_machine_uses_cpus(self):
        from repro.runtime import Machine

        m = Machine(n_nodes=2, gpus_per_node=0)
        mapper = ShardedMapper(m)
        d = mapper.map_task(record(hint=1))
        assert m.device(d).kind is ProcKind.CPU

    def test_empty_device_list_rejected(self):
        with pytest.raises(ValueError):
            ShardedMapper(lassen(1), device_ids=[])


class TestTable:
    def test_table_lookup_and_reassign(self):
        m = lassen(2)
        mapper = TableMapper(m, {7: m.gpus[3].device_id})
        assert mapper.map_task(record(hint=7)) == m.gpus[3].device_id
        mapper.reassign(7, m.gpus[5].device_id)
        assert mapper.map_task(record(hint=7)) == m.gpus[5].device_id

    def test_missing_key_falls_back(self):
        m = lassen(1)
        mapper = TableMapper(m, {})
        d = mapper.map_task(record(hint=123))
        assert m.device(d).kind is ProcKind.GPU


class TestProfiling:
    def entries(self):
        return [
            TimelineEntry(0, "spmv", 1, 0, 0.0, 2.0, 0.5),
            TimelineEntry(1, "spmv", 2, 0, 0.0, 3.0, 0.0),
            TimelineEntry(2, "axpy", 1, 0, 2.0, 4.0, 0.0),
        ]

    def test_profile_by_name(self):
        stats = profile_by_name(self.entries())
        assert stats["spmv"].count == 2
        assert stats["spmv"].total_time == pytest.approx(5.0)
        assert stats["spmv"].mean_time == pytest.approx(2.5)
        assert stats["spmv"].total_comm == pytest.approx(0.5)
        assert stats["axpy"].count == 1

    def test_device_utilization(self):
        m = lassen(1)
        util = device_utilization(self.entries(), m)
        assert util[1] == pytest.approx(4.0 / 4.0)
        assert util[2] == pytest.approx(3.0 / 4.0)
        assert util[0] == 0.0

    def test_device_utilization_empty(self):
        assert device_utilization([], lassen(1)).sum() == 0.0

    def test_window_times(self):
        np.testing.assert_allclose(window_times([0.0, 1.0, 3.0]), [1.0, 2.0])
        assert window_times([5.0]).size == 0
