"""Engine invariants, property-based.

The discrete-event engine must behave like a schedule regardless of the
task stream thrown at it: time never runs backwards, every task starts
after its dependences, determinism holds, and conservation laws hold
for communication accounting.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import (
    IndexSpace,
    Partition,
    Privilege,
    Runtime,
    ShardedMapper,
    TaskLauncher,
    lassen,
)

PRIVS = [Privilege.READ_ONLY, Privilege.READ_WRITE, Privilege.WRITE_DISCARD, Privilege.REDUCE]


@st.composite
def task_streams(draw):
    """A random stream of tasks over a fixed 4-piece region."""
    n_tasks = draw(st.integers(1, 25))
    return [
        (
            draw(st.integers(0, 3)),          # piece
            draw(st.sampled_from(PRIVS)),     # privilege
            draw(st.integers(0, 7)),          # owner hint
            draw(st.floats(0.0, 1e9)),        # flops
        )
        for _ in range(n_tasks)
    ]


def run_stream(stream, keep_timeline=True):
    machine = lassen(2)
    rt = Runtime(machine=machine, mapper=ShardedMapper(machine),
                 keep_timeline=keep_timeline)
    region = rt.create_region(IndexSpace.linear(4096), {"v": np.float64})
    rt.allocate(region, "v")
    part = Partition.equal(region.ispace, 4)

    def make_body(priv):
        if priv is Privilege.READ_ONLY:
            return lambda ctx: float(ctx[0].read().sum())
        if priv is Privilege.REDUCE:
            return lambda ctx: ctx[0].reduce_add(np.ones(ctx[0].n_points))
        return lambda ctx: ctx[0].write(np.ones(ctx[0].n_points))

    for piece, priv, hint, flops in stream:
        tl = TaskLauncher("t", make_body(priv), flops=flops, owner_hint=hint)
        tl.add_requirement(region, ["v"], part[piece], priv)
        rt.execute(tl)
    return rt


@given(stream=task_streams())
@settings(max_examples=40, deadline=None)
def test_schedule_is_causal(stream):
    """start ≤ finish for every task; the clock never decreases; and a
    later conflicting access never starts before the earlier one ends."""
    rt = run_stream(stream)
    tl = rt.engine.timeline
    for e in tl:
        assert e.start <= e.finish
        assert e.start >= 0.0
    # Pairwise conflicts respect program order.
    for i, (pa, va, _, _) in enumerate(stream):
        for j in range(i + 1, len(stream)):
            pb, vb, _, _ = stream[j]
            if pa != pb:
                continue
            both_read = not va.is_write and not vb.is_write
            both_reduce = va is Privilege.REDUCE and vb is Privilege.REDUCE
            if both_read or both_reduce:
                continue
            assert tl[j].start >= tl[i].finish - 1e-15, (
                f"task {j} ({vb}) overtook conflicting task {i} ({va})"
            )


@given(stream=task_streams())
@settings(max_examples=20, deadline=None)
def test_simulation_is_deterministic(stream):
    a = run_stream(stream)
    b = run_stream(stream)
    assert a.sim_time == pytest.approx(b.sim_time, abs=0.0)
    assert a.engine.total_comm_bytes == b.engine.total_comm_bytes


@given(stream=task_streams())
@settings(max_examples=20, deadline=None)
def test_comm_bytes_bounded_by_demand(stream):
    """Total moved bytes never exceed (reads + reduce write-outs) × piece
    size — the engine cannot invent traffic."""
    rt = run_stream(stream)
    piece_bytes = 1024 * 8
    demand = sum(
        piece_bytes for _, priv, _, _ in stream
        if priv.is_read or priv is Privilege.REDUCE
    )
    assert rt.engine.total_comm_bytes <= demand


def test_busy_time_conserved():
    """Sum of per-device busy equals the sum of task durations."""
    stream = [(p % 4, Privilege.READ_WRITE, p, 1e9) for p in range(12)]
    rt = run_stream(stream)
    total_durations = sum(e.finish - e.start for e in rt.engine.timeline)
    assert rt.engine.device_busy.sum() == pytest.approx(total_durations)
