"""Execution fences and the device-memory capacity model."""

import math

import numpy as np
import pytest

from repro.runtime import (
    IndexSpace,
    Partition,
    Privilege,
    ProcKind,
    Runtime,
    ShardedMapper,
    TaskLauncher,
    lassen,
    max_unknowns_in_memory,
)


def launch_noop(rt, region, piece, hint, flops=1e9):
    def body(ctx):
        return None

    tl = TaskLauncher("t", body, flops=flops, owner_hint=hint)
    tl.add_requirement(region, ["v"], piece, Privilege.READ_ONLY)
    return rt.execute(tl)


class TestFence:
    @pytest.fixture
    def setup(self):
        m = lassen(1)
        rt = Runtime(machine=m, mapper=ShardedMapper(m), keep_timeline=True)
        region = rt.create_region(IndexSpace.linear(1024), {"v": np.float64})
        rt.allocate(region, "v")
        part = Partition.equal(region.ispace, 4)
        return rt, region, part

    def test_fence_orders_independent_tasks(self, setup):
        rt, region, part = setup
        launch_noop(rt, region, part[0], 0, flops=1e12)
        t_barrier = rt.fence()
        launch_noop(rt, region, part[1], 1)  # independent piece + device
        first, second = rt.engine.timeline[-2:]
        assert second.start >= t_barrier >= first.finish

    def test_without_fence_they_overlap(self, setup):
        rt, region, part = setup
        launch_noop(rt, region, part[0], 0, flops=1e12)
        launch_noop(rt, region, part[1], 1)
        first, second = rt.engine.timeline[-2:]
        assert second.start < first.finish

    def test_fence_is_idempotent(self, setup):
        rt, *_ = setup
        t1 = rt.fence()
        t2 = rt.fence()
        assert t2 == pytest.approx(t1)


class TestMemoryCapacity:
    def test_paper_scale_sanity(self):
        """2-D 5-pt CSR + CG workspaces on 16 nodes / 64 × 12 GiB V100s
        tops out near the paper's 2^32-unknown right edge."""
        n_max = max_unknowns_in_memory(lassen(16), bytes_per_unknown_matrix=60.0)
        assert 31.5 < math.log2(n_max) < 34.0

    def test_scales_linearly_with_nodes(self):
        a = max_unknowns_in_memory(lassen(2), 60.0)
        b = max_unknowns_in_memory(lassen(4), 60.0)
        assert b == pytest.approx(2 * a, rel=1e-9)

    def test_heavier_stencil_fits_less(self):
        light = max_unknowns_in_memory(lassen(1), 36.0)  # 1d3
        heavy = max_unknowns_in_memory(lassen(1), 324.0)  # 3d27
        assert heavy < light

    def test_more_workspaces_fit_less(self):
        cg = max_unknowns_in_memory(lassen(1), 60.0, n_vectors=8)
        gmres = max_unknowns_in_memory(lassen(1), 60.0, n_vectors=15)
        assert gmres < cg

    def test_cpu_capacity_larger(self):
        gpu = max_unknowns_in_memory(lassen(1), 60.0, kind=ProcKind.GPU)
        cpu = max_unknowns_in_memory(lassen(1), 60.0, kind=ProcKind.CPU)
        assert cpu > gpu
