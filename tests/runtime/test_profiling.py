"""Timeline profiling helpers: per-name stats, utilization, windows."""

import numpy as np
import pytest

from repro.runtime.engine import TimelineEntry
from repro.runtime.machine import Machine
from repro.runtime.profiling import (
    TaskStats,
    device_utilization,
    profile_by_name,
    window_times,
)


def entry(task_id, name, device, start, finish, comm=0.0):
    return TimelineEntry(
        task_id=task_id,
        name=name,
        device_id=device,
        node=0,
        start=start,
        finish=finish,
        comm_time=comm,
    )


def machine(n_gpus):
    # Device 0 is the node's CPU pool; GPUs follow.
    return Machine(n_nodes=1, gpus_per_node=n_gpus)


class TestProfileByName:
    def test_empty_timeline(self):
        assert profile_by_name([]) == {}

    def test_aggregates_per_name(self):
        timeline = [
            entry(1, "spmv", 0, 0.0, 2.0, comm=0.5),
            entry(2, "spmv", 1, 1.0, 2.0, comm=0.25),
            entry(3, "axpy", 0, 2.0, 3.0),
        ]
        stats = profile_by_name(timeline)
        assert set(stats) == {"spmv", "axpy"}
        spmv = stats["spmv"]
        assert spmv.count == 2
        assert spmv.total_time == pytest.approx(3.0)
        assert spmv.total_comm == pytest.approx(0.75)
        assert spmv.mean_time == pytest.approx(1.5)
        assert stats["axpy"].count == 1

    def test_mean_of_empty_stats_is_zero(self):
        assert TaskStats("x", 0, 0.0, 0.0).mean_time == 0.0


class TestDeviceUtilization:
    def test_empty_timeline_is_all_zeros(self):
        m = machine(3)
        util = device_utilization([], m)
        assert util.shape == (m.n_devices,)
        assert np.all(util == 0.0)

    def test_default_horizon_is_last_finish(self):
        timeline = [
            entry(1, "a", 0, 0.0, 2.0),
            entry(2, "b", 1, 0.0, 4.0),
        ]
        util = device_utilization(timeline, machine(2))
        assert util[0] == pytest.approx(0.5)
        assert util[1] == pytest.approx(1.0)

    def test_until_clamps_busy_time(self):
        # Device 0 is busy [0, 4]; at horizon 2 only half counts.
        timeline = [entry(1, "a", 0, 0.0, 4.0)]
        util = device_utilization(timeline, machine(1), until=2.0)
        assert util[0] == pytest.approx(1.0)

    def test_task_entirely_past_horizon_contributes_nothing(self):
        timeline = [
            entry(1, "a", 0, 0.0, 1.0),
            entry(2, "b", 0, 5.0, 9.0),
        ]
        util = device_utilization(timeline, machine(1), until=2.0)
        assert util[0] == pytest.approx(0.5)

    def test_zero_horizon_returns_zeros_not_nan(self):
        timeline = [entry(1, "a", 0, 0.0, 0.0)]
        util = device_utilization(timeline, machine(1))
        assert np.all(util == 0.0)
        assert np.all(np.isfinite(util))


class TestWindowTimes:
    def test_empty_marks(self):
        out = window_times([])
        assert out.shape == (0,)

    def test_single_mark(self):
        out = window_times([1.5])
        assert out.shape == (0,)

    def test_differences(self):
        out = window_times([0.0, 1.0, 3.5])
        assert out == pytest.approx([1.0, 2.5])
