"""Piece kernels: per-piece SpMV compilation for every format, forward
and adjoint, driven by the §3.1 co-partitioning."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.projection import col_D_to_K, col_K_to_D, row_K_to_R, row_R_to_K
from repro.runtime import Partition, Subset
from repro.sparse import ALL_FORMATS, COOMatrix

FORMAT_IDS = [name for name, _ in ALL_FORMATS]


@pytest.fixture
def reference(rng):
    A = sp.random(12, 16, density=0.35, random_state=np.random.default_rng(21), format="csr")
    A.data[:] = rng.normal(size=A.nnz)
    return A


@pytest.mark.parametrize(("name", "convert"), ALL_FORMATS, ids=FORMAT_IDS)
def test_forward_pieces_reassemble_spmv(name, convert, reference, rng):
    m = convert(COOMatrix.from_scipy(reference))
    x = rng.normal(size=16)
    for n_pieces in (1, 3):
        P = Partition.equal(m.range_space, n_pieces)
        KP = row_R_to_K(m, P)
        DP = col_K_to_D(m, KP)
        RP = row_K_to_R(m, KP)
        y = np.zeros(12)
        for c in range(n_pieces):
            if RP[c].is_empty:
                continue
            pk = m.make_piece_kernel(KP[c], DP[c], RP[c])
            np.add.at(y, RP[c].indices, pk(x[DP[c].indices]))
        np.testing.assert_allclose(y, reference @ x, atol=1e-10)


@pytest.mark.parametrize(("name", "convert"), ALL_FORMATS, ids=FORMAT_IDS)
def test_adjoint_pieces_reassemble_rmatvec(name, convert, reference, rng):
    m = convert(COOMatrix.from_scipy(reference))
    v = rng.normal(size=12)
    Q = Partition.equal(m.domain_space, 3)
    KP = col_D_to_K(m, Q)
    RP = row_K_to_R(m, KP)
    DP = col_K_to_D(m, KP)
    w = np.zeros(16)
    for c in range(3):
        if DP[c].is_empty:
            continue
        pk = m.make_piece_kernel(KP[c], DP[c], RP[c], transpose=True)
        np.add.at(w, DP[c].indices, pk(v[RP[c].indices]))
    np.testing.assert_allclose(w, reference.T @ v, atol=1e-10)


def test_piece_kernel_cost_annotations(reference):
    m = COOMatrix.from_scipy(reference)
    P = Partition.equal(m.range_space, 2)
    KP = row_R_to_K(m, P)
    DP = col_K_to_D(m, KP)
    RP = row_K_to_R(m, KP)
    pk = m.make_piece_kernel(KP[0], DP[0], RP[0])
    assert pk.flops == pytest.approx(2.0 * KP[0].volume)
    assert pk.bytes_touched > 0
    assert pk.shape == (RP[0].volume, DP[0].volume)


def test_kernel_subset_space_validated(reference):
    m = COOMatrix.from_scipy(reference)
    with pytest.raises(ValueError):
        m.make_piece_kernel(
            Subset.full(m.domain_space),  # wrong space
            Subset.full(m.domain_space),
            Subset.full(m.range_space),
        )


def test_escaping_indices_detected(reference):
    """A domain subset that misses columns the piece reads must fail
    loudly rather than silently corrupt."""
    m = COOMatrix.from_scipy(reference)
    KP = Subset.full(m.kernel_space)
    too_small = Subset.interval(m.domain_space, 0, 0)
    with pytest.raises(ValueError):
        m.make_piece_kernel(KP, too_small, Subset.full(m.range_space))
