"""Satellite 3: hypothesis property suite for the SELL-C-σ plugin.

Pinning the layout invariants that make SELL-C-σ safe to enroll in the
bitwise matrices:

* the σ-window sort is a *permutation* of the rows and round-trips
  exactly (scattering through ``perm`` recovers the original order);
* slice padding never alters SpMV (explicitly densifying the padding
  slots to zero values leaves results bitwise-unchanged);
* every slice holds exactly C lanes: ``sliceptr`` diffs are
  ``width * C`` even for ragged row counts where C does not divide
  ``n_rows``;
* SpMV matches CSR **bitwise** on random sparse matrices.
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import CSRMatrix, SELLCSigmaMatrix

SETTINGS = settings(max_examples=60, deadline=None)


@st.composite
def sparse_problems(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    m = draw(st.integers(min_value=1, max_value=40))
    chunk = draw(st.integers(min_value=1, max_value=9))
    sigma = draw(st.one_of(st.none(), st.integers(min_value=1, max_value=64)))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    density = draw(st.floats(min_value=0.0, max_value=0.5))
    rng = np.random.default_rng(seed)
    A = sp.random(n, m, density=density, random_state=rng, format="csr")
    # Magnitudes bounded away from under/overflow: the bitwise contract
    # is about association order, not denormal edge cases.
    A.data[:] = rng.uniform(1e-3, 1e3, A.nnz) * rng.choice([-1.0, 1.0], A.nnz)
    x = rng.uniform(1e-3, 1e3, m) * rng.choice([-1.0, 1.0], m)
    return A, x, chunk, sigma


@SETTINGS
@given(prob=sparse_problems())
def test_sigma_sort_is_a_permutation_and_round_trips(prob):
    A, _, chunk, sigma = prob
    S = SELLCSigmaMatrix.from_scipy(A, chunk=chunk, sigma=sigma)
    n = A.shape[0]
    assert sorted(S.perm.tolist()) == list(range(n))
    # Round trip: scattering sorted data back through perm is identity.
    data = np.arange(n)
    sorted_view = data[S.perm]
    restored = np.empty(n, dtype=data.dtype)
    restored[S.perm] = sorted_view
    np.testing.assert_array_equal(restored, data)
    # Sorting is windowed: a row never leaves its σ-window.
    for i in range(n):
        assert S.perm[i] // S.sigma == i // S.sigma


@SETTINGS
@given(prob=sparse_problems())
def test_slice_padding_never_alters_spmv(prob):
    A, x, chunk, sigma = prob
    S = SELLCSigmaMatrix.from_scipy(A, chunk=chunk, sigma=sigma)
    y = S.spmv(x)
    # Padding slots carry value 0.0 and a sentinel column; rewriting the
    # sentinel to an arbitrary in-range column must change nothing,
    # because a 0.0 multiplier is bitwise-neutral in the accumulation.
    pad = S.cols < 0
    assert int(pad.sum()) == S.n_padding
    assert np.all(S.values[pad] == 0.0)
    S._arrays.cols_rel = np.where(pad, (A.shape[1] - 1) // 2, S.cols)
    S._arrays._plan = None  # cols are cached in the SpMV plan; rebuild
    assert S.spmv(x).tobytes() == y.tobytes()


@SETTINGS
@given(prob=sparse_problems())
def test_chunk_divides_every_slice_for_ragged_row_counts(prob):
    A, _, chunk, sigma = prob
    S = SELLCSigmaMatrix.from_scipy(A, chunk=chunk, sigma=sigma)
    n = A.shape[0]
    assert S.chunk == chunk
    assert S.n_slices == max(1, -(-n // chunk))
    diffs = np.diff(S.sliceptr)
    np.testing.assert_array_equal(diffs, S.slice_widths * chunk)
    assert S.sliceptr[0] == 0
    assert S.sliceptr[-1] == S.kernel_space.volume
    # Per-slice width is the max sorted row length in that slice (or the
    # degenerate pad for an all-zero matrix).
    lens = np.diff(sp.csr_matrix(A).indptr)[S.perm]
    for t in range(S.n_slices):
        sl = lens[t * chunk:(t + 1) * chunk]
        want = int(sl.max()) if sl.size else 0
        if t == 0 and A.nnz == 0:
            want = 1  # all-zero matrix keeps one all-padding slot
        assert S.slice_widths[t] == want


@SETTINGS
@given(prob=sparse_problems())
def test_spmv_matches_csr_bitwise(prob):
    A, x, chunk, sigma = prob
    S = SELLCSigmaMatrix.from_scipy(A, chunk=chunk, sigma=sigma)
    C = CSRMatrix.from_scipy(sp.csr_matrix(A))
    assert S.spmv(x).tobytes() == C.spmv(x).tobytes()
