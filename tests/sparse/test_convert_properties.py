"""Conversion round trips and property-based format equivalence."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.sparse import ALL_FORMATS, COOMatrix, to_csr

FORMAT_IDS = [name for name, _ in ALL_FORMATS]


@pytest.mark.parametrize(("name_a", "conv_a"), ALL_FORMATS, ids=FORMAT_IDS)
@pytest.mark.parametrize(("name_b", "conv_b"), ALL_FORMATS, ids=FORMAT_IDS)
def test_pairwise_conversion_preserves_operator(name_a, conv_a, name_b, conv_b, rng):
    A = sp.random(8, 12, density=0.4, random_state=np.random.default_rng(17), format="csr")
    A.data[:] = rng.normal(size=A.nnz)
    base = COOMatrix.from_scipy(A)
    converted = conv_b(conv_a(base))
    np.testing.assert_allclose(converted.to_dense(), A.toarray(), atol=1e-12)


@st.composite
def small_dense_matrices(draw):
    n_rows = draw(st.integers(2, 8))
    n_cols = draw(st.integers(2, 8))
    # Make dims even so block formats accept (2, 2) blocks.
    n_rows += n_rows % 2
    n_cols += n_cols % 2
    values = draw(
        arrays(
            np.float64,
            (n_rows, n_cols),
            elements=st.floats(-10, 10, allow_nan=False).map(lambda v: round(v, 3)),
        )
    )
    # Sparsify: zero out a random mask.
    mask = draw(
        arrays(np.bool_, (n_rows, n_cols), elements=st.booleans())
    )
    return values * mask


@given(dense=small_dense_matrices())
@settings(max_examples=30, deadline=None)
def test_all_formats_agree_on_random_matrices(dense):
    if not np.any(dense):
        dense[0, 0] = 1.0
    base = COOMatrix.from_dense(dense)
    x = np.linspace(-1, 1, dense.shape[1])
    expected = dense @ x
    for name, convert in ALL_FORMATS:
        m = convert(base)
        np.testing.assert_allclose(m.spmv(x), expected, atol=1e-9, err_msg=name)
        np.testing.assert_allclose(m.to_dense(), dense, atol=1e-12, err_msg=name)


@given(dense=small_dense_matrices(), data=st.data())
@settings(max_examples=30, deadline=None)
def test_spmv_linearity(dense, data):
    """SpMV is linear: A(αx + y) = αAx + Ay, for every format."""
    if not np.any(dense):
        dense[0, 0] = 1.0
    n = dense.shape[1]
    alpha = data.draw(st.floats(-4, 4, allow_nan=False))
    rng = np.random.default_rng(0)
    x, y = rng.normal(size=n), rng.normal(size=n)
    m = to_csr(COOMatrix.from_dense(dense))
    np.testing.assert_allclose(
        m.spmv(alpha * x + y), alpha * m.spmv(x) + m.spmv(y), atol=1e-8
    )


@given(dense=small_dense_matrices())
@settings(max_examples=30, deadline=None)
def test_rmatvec_is_adjoint(dense):
    """⟨Ax, v⟩ = ⟨x, Aᵀv⟩ for every format."""
    if not np.any(dense):
        dense[0, 0] = 1.0
    rng = np.random.default_rng(1)
    x = rng.normal(size=dense.shape[1])
    v = rng.normal(size=dense.shape[0])
    base = COOMatrix.from_dense(dense)
    for name, convert in ALL_FORMATS:
        m = convert(base)
        lhs = np.dot(m.spmv(x), v)
        rhs = np.dot(x, m.rmatvec(v))
        assert lhs == pytest.approx(rhs, abs=1e-8), name


@given(dense=small_dense_matrices(), seed=st.integers(0, 2 ** 16))
@settings(max_examples=25, deadline=None)
def test_copartition_invariants_hold_after_conversion(dense, seed):
    """Property: for random matrices, random partition granularities, and
    every format, the §3.1 co-partition invariants hold (round-trip
    refinement, kernel covering, domain covering)."""
    from repro.verify import check_copartition

    if not np.any(dense):
        dense[0, 0] = 1.0
    base = COOMatrix.from_dense(dense)
    n_pieces = 1 + seed % min(4, dense.shape[0])
    for name, convert in ALL_FORMATS:
        assert check_copartition(convert(base), n_pieces, name) == [], name


@given(dense=small_dense_matrices(), seed=st.integers(0, 2 ** 16))
@settings(max_examples=25, deadline=None)
def test_conversion_preserves_copartitioned_spmv(dense, seed):
    """Property: piecewise SpMV through each format's own derived
    co-partition equals the dense product — conversion preserves not
    just the operator but its partitioned execution."""
    from repro.core.projection import matvec_copartition
    from repro.runtime.partition import Partition

    if not np.any(dense):
        dense[0, 0] = 1.0
    rng = np.random.default_rng(seed)
    x = rng.normal(size=dense.shape[1])
    base = COOMatrix.from_dense(dense)
    n_pieces = 1 + seed % min(3, dense.shape[0])
    for name, convert in ALL_FORMATS:
        m = convert(base)
        P = Partition.equal(m.range_space, n_pieces)
        KP, DP = matvec_copartition(m, P)
        y = np.zeros(dense.shape[0])
        for kp in KP.pieces:
            rows, cols, vals = m.triplets(kp.indices)
            np.add.at(y, rows, vals * x[cols])
        np.testing.assert_allclose(y, dense @ x, atol=1e-9, err_msg=name)
