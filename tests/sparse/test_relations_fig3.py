"""The Figure 3 table: each format's structural assumptions and the
row/column relations, verified against brute-force pair enumeration."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.runtime.deppart import (
    ComputedRelation,
    FunctionalRelation,
    IntervalRelation,
)
from repro.sparse import (
    BCSCMatrix,
    BCSRMatrix,
    COOMatrix,
    CSCMatrix,
    CSRMatrix,
    DenseMatrix,
    DIAMatrix,
    ELLMatrix,
    ELLTransposedMatrix,
)


@pytest.fixture
def A(rng):
    M = sp.random(8, 12, density=0.35, random_state=np.random.default_rng(9), format="csr")
    M.data[:] = rng.normal(size=M.nnz)
    return M


def relation_pairs_by_brute_force(matrix, relation, target_volume):
    """Enumerate relation pairs via preimages of every singleton."""
    pairs = set()
    for j in range(target_volume):
        for k in relation.preimage_indices(np.array([j])):
            pairs.add((int(k), j))
    return pairs


def check_relations_describe_matrix(matrix, reference):
    """The defining property: expanding the relations against the entry
    array reproduces the matrix (paper equation (2), functional case)."""
    rows, cols, vals = matrix.triplets()
    dense = np.zeros(matrix.shape)
    np.add.at(dense, (rows, cols), vals)
    np.testing.assert_allclose(dense, reference.toarray(), atol=1e-12)
    # Cross-check the relations against triplets: for each kernel point
    # in the triplet expansion, (k, row) ∈ row relation and (k, col) ∈ col.
    col_pairs = relation_pairs_by_brute_force(
        matrix, matrix.col_relation, matrix.domain_space.volume
    )
    row_pairs = relation_pairs_by_brute_force(
        matrix, matrix.row_relation, matrix.range_space.volume
    )
    # Image consistency: image of all K along relations covers exactly
    # the nonempty rows/columns.
    all_k = np.arange(matrix.kernel_space.volume, dtype=np.int64)
    img_cols = set(matrix.col_relation.image_indices(all_k).tolist())
    img_rows = set(matrix.row_relation.image_indices(all_k).tolist())
    assert img_cols == {j for _, j in col_pairs}
    assert img_rows == {i for _, i in row_pairs}


class TestDenseRow:
    """Dense: K = R × D; both relations implicit projections."""

    def test_structural_assumption(self, A):
        m = DenseMatrix(A.toarray())
        assert m.kernel_space.shape == (8, 12)
        assert isinstance(m.col_relation, ComputedRelation)
        assert isinstance(m.row_relation, ComputedRelation)

    def test_projections(self, A):
        m = DenseMatrix(A.toarray())
        # Kernel point k = i*12 + j projects to row i and column j.
        k = np.array([0, 13, 95])
        np.testing.assert_array_equal(m.row_relation.image_indices(k), [0, 1, 7])
        np.testing.assert_array_equal(np.sort(m.col_relation.image_indices(k)), [0, 1, 11])

    def test_semantics(self, A):
        check_relations_describe_matrix(DenseMatrix(A.toarray()), A)


class TestCOORow:
    """COO: no structural assumptions; two stored functions."""

    def test_relations_stored(self, A):
        m = COOMatrix.from_scipy(A)
        assert isinstance(m.col_relation, FunctionalRelation)
        assert isinstance(m.row_relation, FunctionalRelation)
        assert m.kernel_space.volume == A.nnz

    def test_semantics(self, A):
        check_relations_describe_matrix(COOMatrix.from_scipy(A), A)


class TestCSRRow:
    """CSR: K totally ordered; col stored, rowptr : R → [K, K]."""

    def test_relation_types(self, A):
        m = CSRMatrix.from_scipy(A)
        assert isinstance(m.col_relation, FunctionalRelation)
        assert isinstance(m.row_relation, IntervalRelation)
        assert m.row_relation.monotone  # the total-order assumption

    def test_rowptr_intervals(self, A):
        m = CSRMatrix.from_scipy(A)
        csr = A.tocsr()
        for i in range(8):
            pre = m.row_relation.preimage_indices(np.array([i]))
            np.testing.assert_array_equal(
                pre, np.arange(csr.indptr[i], csr.indptr[i + 1])
            )

    def test_semantics(self, A):
        check_relations_describe_matrix(CSRMatrix.from_scipy(A), A)


class TestCSCRow:
    """CSC: the mirror — row stored, colptr : D → [K, K]."""

    def test_relation_types(self, A):
        m = CSCMatrix.from_scipy(A)
        assert isinstance(m.row_relation, FunctionalRelation)
        assert isinstance(m.col_relation, IntervalRelation)

    def test_semantics(self, A):
        check_relations_describe_matrix(CSCMatrix.from_scipy(A), A)


class TestELLRows:
    """ELL: K = R × K₀, implicit row projection; ELL': the transpose."""

    def test_ell_structural(self, A):
        m = ELLMatrix.from_scipy(A)
        assert m.kernel_space.dim == 2
        assert m.kernel_space.shape[0] == 8  # R × K0

    def test_ell_implicit_row_relation(self, A):
        m = ELLMatrix.from_scipy(A)
        # Valid slots of row i are exactly the padded-col >= 0 slots.
        pre = m.row_relation.preimage_indices(np.array([0]))
        slots = m.slots
        assert all(k // slots == 0 for k in pre)

    def test_ell_semantics(self, A):
        check_relations_describe_matrix(ELLMatrix.from_scipy(A), A)

    def test_ell_transposed_structural(self, A):
        m = ELLTransposedMatrix.from_scipy(A)
        assert m.kernel_space.shape[0] == 12  # D × K0

    def test_ell_transposed_semantics(self, A):
        check_relations_describe_matrix(ELLTransposedMatrix.from_scipy(A), A)


class TestDIARow:
    """DIA: K = K₀ × D with offsets; both relations implicit."""

    def test_structural(self, A):
        m = DIAMatrix.from_scipy(A)
        assert m.kernel_space.dim == 2
        assert m.kernel_space.shape[1] == 12

    def test_row_formula(self):
        """row(k₀, i) = i − offset(k₀), per the Figure 3 formula."""
        dense = np.diag([1.0, 2.0, 3.0]) + np.diag([4.0, 5.0], k=1)
        m = DIAMatrix.from_dense(dense)
        rows, cols, vals = m.triplets()
        for r, c, v in zip(rows, cols, vals):
            assert dense[r, c] == v

    def test_out_of_range_slots_are_structural_zeros(self):
        dense = np.diag([4.0, 5.0], k=1) + np.diag(np.ones(3))
        m = DIAMatrix.from_dense(dense)
        rows, _, _ = m.triplets()
        assert (rows >= 0).all() and (rows < 3).all()

    def test_semantics(self, A):
        check_relations_describe_matrix(DIAMatrix.from_scipy(A), A)


class TestBlockRows:
    """BCSR/BCSC: factored kernel space K = K₀ × B_R × B_D."""

    def test_bcsr_structural(self, A):
        m = BCSRMatrix.from_scipy(A, block_size=(2, 2))
        assert m.kernel_space.dim == 3
        assert m.kernel_space.shape[1:] == (2, 2)

    def test_bcsr_semantics(self, A):
        check_relations_describe_matrix(BCSRMatrix.from_scipy(A, block_size=(2, 2)), A)

    def test_bcsc_semantics(self, A):
        check_relations_describe_matrix(BCSCMatrix.from_scipy(A, block_size=(2, 2)), A)

    def test_block_relations_span_blocks(self, A):
        m = BCSRMatrix.from_scipy(A, block_size=(2, 2))
        # The preimage of one row includes whole block rows (bd slots per
        # block), i.e. comes in multiples of the block width.
        pre = m.row_relation.preimage_indices(np.array([0]))
        assert pre.size % m.bd == 0
