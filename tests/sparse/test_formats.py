"""Every storage format computes the same linear transformation."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.sparse import (
    ALL_FORMATS,
    COOMatrix,
    CSRMatrix,
    DenseMatrix,
    DIAMatrix,
    ELLMatrix,
    SparseFormat,
)

FORMAT_IDS = [name for name, _ in ALL_FORMATS]


@pytest.fixture
def reference(rng):
    """A 12×16 random matrix (block sizes divide both dims)."""
    A = sp.random(12, 16, density=0.3, random_state=np.random.default_rng(3), format="csr")
    A.data[:] = rng.normal(size=A.nnz)
    return A


@pytest.fixture
def square_reference(rng):
    A = sp.random(12, 12, density=0.3, random_state=np.random.default_rng(4), format="csr")
    A.data[:] = rng.normal(size=A.nnz)
    A = A + sp.identity(12)
    return A.tocsr()


@pytest.mark.parametrize(("name", "convert"), ALL_FORMATS, ids=FORMAT_IDS)
class TestFormatSemantics:
    def build(self, convert, reference):
        return convert(COOMatrix.from_scipy(reference))

    def test_to_dense(self, name, convert, reference, rng):
        m = self.build(convert, reference)
        np.testing.assert_allclose(m.to_dense(), reference.toarray(), atol=1e-12)

    def test_spmv_native(self, name, convert, reference, rng):
        m = self.build(convert, reference)
        x = rng.normal(size=16)
        np.testing.assert_allclose(m.spmv(x), reference @ x, atol=1e-10)

    def test_rmatvec_native(self, name, convert, reference, rng):
        m = self.build(convert, reference)
        v = rng.normal(size=12)
        np.testing.assert_allclose(m.rmatvec(v), reference.T @ v, atol=1e-10)

    def test_generic_spmv_from_triplets(self, name, convert, reference, rng):
        """Equation (2) evaluated generically matches the native kernel."""
        m = self.build(convert, reference)
        x = rng.normal(size=16)
        np.testing.assert_allclose(SparseFormat.spmv(m, x), m.spmv(x), atol=1e-10)

    def test_shape_and_scipy_roundtrip(self, name, convert, reference, rng):
        m = self.build(convert, reference)
        assert m.shape == (12, 16)
        back = m.to_scipy()
        np.testing.assert_allclose(back.toarray(), reference.toarray(), atol=1e-12)

    def test_triplets_restricted_to_kernel_subset(self, name, convert, reference, rng):
        m = self.build(convert, reference)
        half = np.arange(m.kernel_space.volume // 2, dtype=np.int64)
        rest = np.arange(m.kernel_space.volume // 2, m.kernel_space.volume, dtype=np.int64)
        dense = np.zeros(m.shape)
        for part in (half, rest):
            r, c, v = m.triplets(part)
            np.add.at(dense, (r, c), v)
        np.testing.assert_allclose(dense, reference.toarray(), atol=1e-12)

    def test_piece_bytes_positive_and_monotone(self, name, convert, reference, rng):
        m = self.build(convert, reference)
        b1 = m.piece_bytes(10, 5, 5)
        b2 = m.piece_bytes(20, 5, 5)
        assert 0 < b1 < b2


class TestConstructionValidation:
    def test_coo_mismatched_arrays(self):
        from repro.runtime import IndexSpace

        D, R = IndexSpace.linear(4), IndexSpace.linear(4)
        with pytest.raises(ValueError):
            COOMatrix(np.ones(3), np.zeros(2, dtype=np.int64), np.zeros(3, dtype=np.int64), D, R)

    def test_coo_out_of_bounds(self):
        from repro.runtime import IndexSpace

        D, R = IndexSpace.linear(4), IndexSpace.linear(4)
        with pytest.raises(ValueError):
            COOMatrix(np.ones(1), np.array([4]), np.array([0]), D, R)
        with pytest.raises(ValueError):
            COOMatrix(np.ones(1), np.array([0]), np.array([-1]), D, R)

    def test_csr_bad_rowptr(self):
        from repro.runtime import IndexSpace

        D, R = IndexSpace.linear(4), IndexSpace.linear(3)
        with pytest.raises(ValueError):
            CSRMatrix(np.ones(2), np.zeros(2, dtype=np.int64), np.array([0, 2, 1, 2]), D, R)
        with pytest.raises(ValueError):
            CSRMatrix(np.ones(2), np.zeros(2, dtype=np.int64), np.array([0, 1, 2]), D, R)

    def test_dia_distinct_offsets(self):
        with pytest.raises(ValueError):
            DIAMatrix(np.ones((2, 4)), np.array([0, 0]))

    def test_dense_requires_2d(self):
        with pytest.raises(ValueError):
            DenseMatrix(np.ones(4))

    def test_ell_shape_mismatch(self):
        from repro.runtime import IndexSpace

        with pytest.raises(ValueError):
            ELLMatrix(np.ones((3, 2)), np.zeros((3, 3), dtype=np.int64), IndexSpace.linear(4))


class TestCSRSpecifics:
    def test_from_coo_arrays_sorts_rows(self, square_reference):
        coo = square_reference.tocoo()
        from repro.runtime import IndexSpace

        D = IndexSpace.linear(12)
        m = CSRMatrix.from_coo_arrays(
            coo.data, coo.row.astype(np.int64), coo.col.astype(np.int64), D, D
        )
        np.testing.assert_allclose(m.to_dense(), square_reference.toarray())

    def test_diagonal(self, square_reference):
        m = CSRMatrix.from_scipy(square_reference)
        np.testing.assert_allclose(m.diagonal(), square_reference.diagonal())

    def test_diagonal_requires_square(self, reference):
        m = CSRMatrix.from_scipy(reference)
        with pytest.raises(ValueError):
            m.diagonal()

    def test_row_of_expands_rowptr(self, square_reference):
        m = CSRMatrix.from_scipy(square_reference)
        rows = m.row_of()
        assert rows.size == m.nnz
        assert (np.diff(rows) >= 0).all()


class TestEdgeCases:
    def test_empty_matrix_representable(self):
        m = COOMatrix.from_dense(np.zeros((3, 3)))
        assert m.spmv(np.ones(3)).sum() == 0.0

    def test_single_entry(self):
        m = CSRMatrix.from_dense(np.array([[0.0, 2.0], [0.0, 0.0]]))
        np.testing.assert_allclose(m.spmv(np.array([1.0, 3.0])), [6.0, 0.0])

    def test_dia_rectangular(self, rng):
        A = sp.diags([1.0, 2.0], [0, 1], shape=(4, 6)).tocsr()
        m = DIAMatrix.from_scipy(A)
        x = rng.normal(size=6)
        np.testing.assert_allclose(m.spmv(x), A @ x)
        v = rng.normal(size=4)
        np.testing.assert_allclose(m.rmatvec(v), A.T @ v)

    def test_ell_ragged_rows(self, rng):
        dense = np.zeros((4, 4))
        dense[0] = [1, 2, 3, 4]  # full row
        dense[2, 1] = 5.0  # single entry
        m = ELLMatrix.from_dense(dense)
        assert m.slots == 4
        x = rng.normal(size=4)
        np.testing.assert_allclose(m.spmv(x), dense @ x)
