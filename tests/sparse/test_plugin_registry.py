"""The format-plugin registry: validation, kernel installation with
rollback, live views, and end-to-end enrollment of a toy plugin."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.runtime.kernels import KERNEL_REGISTRY
from repro.sparse import COOMatrix, CSRMatrix, to_csr
from repro.sparse.plugin import (
    ALL_FORMATS,
    FORMAT_REGISTRY,
    ORACLE_FORMATS,
    FormatSpec,
    build_format,
    conversion_formats,
    format_names,
    get_spec,
    kernel_name,
    matrix_format_names,
    register_format,
    unregister_format,
)


class _ToyFormat(CSRMatrix):
    """A CSR clone under a new name — enough to exercise registration."""


def _toy_spec(name="toyfmt", **overrides):
    defaults = dict(
        name=name,
        cls=_ToyFormat,
        convert=lambda m: _ToyFormat.from_scipy(m.to_scipy()),
        description="toy",
    )
    defaults.update(overrides)
    return FormatSpec(**defaults)


@pytest.fixture
def clean_registry():
    yield
    for name in ("toyfmt", "toyfmt2"):
        if name in FORMAT_REGISTRY:
            unregister_format(name)


class TestValidation:
    def test_rejects_non_spec(self):
        with pytest.raises(TypeError, match="FormatSpec"):
            register_format({"name": "x"})

    @pytest.mark.parametrize("bad", ["", "UPPER", "1leading", "has-dash", "sp ace"])
    def test_rejects_bad_names(self, bad):
        with pytest.raises(ValueError, match="must match"):
            register_format(_toy_spec(name=bad))

    def test_rejects_duplicates(self, clean_registry):
        register_format(_toy_spec())
        with pytest.raises(ValueError, match="already registered"):
            register_format(_toy_spec())

    def test_rejects_non_sparseformat_cls(self):
        with pytest.raises(ValueError, match="subclass SparseFormat"):
            register_format(_toy_spec(cls=dict))

    def test_rejects_missing_constructors(self):
        with pytest.raises(ValueError, match="convert/from_scipy"):
            register_format(FormatSpec(name="toyfmt", cls=_ToyFormat))

    def test_stored_formats_need_converter(self):
        with pytest.raises(ValueError, match="stored formats need a converter"):
            register_format(
                FormatSpec(
                    name="toyfmt", cls=_ToyFormat,
                    from_scipy=_ToyFormat.from_scipy,
                )
            )

    def test_rejects_bad_size_multiple(self):
        with pytest.raises(ValueError, match="size_multiple"):
            register_format(_toy_spec(size_multiple=0))


class TestKernelInstallation:
    def test_kernels_installed_namespaced(self, clean_registry):
        body = lambda ctx, payload: None
        register_format(_toy_spec(kernels={"spmv_exclusive": body}))
        assert KERNEL_REGISTRY[kernel_name("toyfmt", "spmv_exclusive")] is body

    def test_collision_rolls_back_partial_installs(self, clean_registry):
        body = lambda ctx, payload: None
        # Pre-occupy the second kernel slot so installation fails midway;
        # the first installed kernel must be rolled back with the spec.
        KERNEL_REGISTRY[kernel_name("toyfmt2", "k2")] = body
        try:
            with pytest.raises(ValueError):
                register_format(
                    _toy_spec(name="toyfmt2", kernels={"k1": body, "k2": body})
                )
            assert "toyfmt2" not in FORMAT_REGISTRY
            assert kernel_name("toyfmt2", "k1") not in KERNEL_REGISTRY
        finally:
            KERNEL_REGISTRY.pop(kernel_name("toyfmt2", "k2"), None)

    def test_unregister_removes_spec_and_kernels(self, clean_registry):
        register_format(_toy_spec(kernels={"k": lambda ctx, p: None}))
        unregister_format("toyfmt")
        assert "toyfmt" not in FORMAT_REGISTRY
        assert kernel_name("toyfmt", "k") not in KERNEL_REGISTRY

    def test_unregister_unknown_raises(self):
        with pytest.raises(KeyError, match="not registered"):
            unregister_format("no_such_format")


class TestLookup:
    def test_get_spec_lists_known_on_miss(self):
        with pytest.raises(KeyError, match="csr"):
            get_spec("no_such_format")

    def test_build_format_prefers_from_scipy(self, clean_registry):
        calls = []

        def fs(A):
            calls.append(A)
            return _ToyFormat.from_scipy(sp.csr_matrix(A))

        register_format(_toy_spec(from_scipy=fs))
        A = sp.eye(4, format="csr")
        op = build_format("toyfmt", A)
        assert calls and isinstance(op, _ToyFormat)

    def test_build_format_falls_back_to_convert(self, clean_registry):
        register_format(_toy_spec())
        op = build_format("toyfmt", sp.eye(4, format="csr"))
        assert isinstance(op, _ToyFormat)
        np.testing.assert_allclose(op.to_dense(), np.eye(4))

    def test_matrix_format_names_respects_opt_out(self, clean_registry):
        register_format(_toy_spec(bitwise_matrix=False))
        assert "toyfmt" in format_names()
        assert "toyfmt" not in matrix_format_names()
        assert "sell_c_sigma" in matrix_format_names()


class TestLiveViews:
    def test_views_reflect_registration(self, clean_registry):
        n_before = len(ALL_FORMATS)
        assert "toyfmt" not in ORACLE_FORMATS
        register_format(_toy_spec())
        assert len(ALL_FORMATS) == n_before + 1
        assert "toyfmt" in ORACLE_FORMATS
        assert ("toyfmt" in dict(conversion_formats()))
        unregister_format("toyfmt")
        assert len(ALL_FORMATS) == n_before

    def test_view_sequence_protocol(self):
        names = list(ORACLE_FORMATS)
        assert ORACLE_FORMATS[0] == names[0]
        assert ORACLE_FORMATS[:2] == names[:2]
        assert ORACLE_FORMATS == names
        assert ORACLE_FORMATS + ["x"] == names + ["x"]
        assert ["x"] + ORACLE_FORMATS == ["x"] + names
        assert repr(ORACLE_FORMATS) == repr(names)
        assert "matfree" in ORACLE_FORMATS

    def test_bundled_plugins_are_registered(self):
        for name in ("bcsc", "sell_c_sigma"):
            spec = get_spec(name)
            assert not spec.builtin
        assert get_spec("csr").builtin


class TestEndToEndEnrollment:
    def test_registered_toy_format_runs_through_oracle(self, clean_registry):
        from repro.verify.oracle import run_oracle

        register_format(_toy_spec())
        report = run_oracle(
            formats=["csr", "toyfmt"], solvers=["cg"], seeds=(0,),
            piece_counts=(2,), size=12, check_copartitions=False,
        )
        assert report.ok, report.summary()

    def test_conversion_round_trip(self, clean_registry):
        register_format(_toy_spec())
        A = sp.random(8, 8, density=0.4, random_state=np.random.default_rng(7), format="csr")
        toy = build_format("toyfmt", A)
        back = to_csr(COOMatrix.from_scipy(toy.to_scipy()))
        np.testing.assert_allclose(back.to_dense(), A.toarray())
