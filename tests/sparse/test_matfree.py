"""Matrix-free operators: the §5 'matrix-free tasks' capability."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.api import make_planner
from repro.core import CGSolver, SOL
from repro.core.projection import matvec_copartition
from repro.runtime import (
    ComputedRelation,
    FullRelation,
    IndexSpace,
    Partition,
    lassen,
)
from repro.sparse import MatrixFreeOperator


@pytest.fixture
def spaces():
    return IndexSpace.linear(64, name="D_mf")


def laplacian_apply(n):
    """Matrix-free 1-D Dirichlet Laplacian."""

    def apply_fn(x_piece, rows, cols):
        xf = np.zeros(n)
        xf[cols] = x_piece
        y = 2.0 * xf[rows]
        y -= np.where(rows > 0, xf[np.maximum(rows - 1, 0)], 0.0)
        y -= np.where(rows < n - 1, xf[np.minimum(rows + 1, n - 1)], 0.0)
        return y

    return apply_fn


def stencil_dependence(n, space):
    """Row i depends on columns {i−1, i, i+1}: a genuinely one-to-many
    relation, so it is expressed as explicit pairs."""
    from repro.runtime import PairsRelation

    rows = np.repeat(np.arange(n, dtype=np.int64), 3)
    cols = np.clip(rows + np.tile([-1, 0, 1], n), 0, n - 1)
    pairs = np.unique(np.stack([rows, cols], axis=1), axis=0)
    return PairsRelation(IndexSpace.linear(n), space, pairs)


class TestSemantics:
    def test_to_dense_matches_reference(self, spaces):
        n = spaces.volume
        op = MatrixFreeOperator(laplacian_apply(n), spaces, spaces)
        ref = sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n)).toarray()
        np.testing.assert_allclose(op.to_dense(), ref)

    def test_spmv(self, spaces, rng):
        n = spaces.volume
        op = MatrixFreeOperator(laplacian_apply(n), spaces, spaces)
        x = rng.normal(size=n)
        ref = sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n))
        np.testing.assert_allclose(op.spmv(x), ref @ x)

    def test_triplets_unavailable(self, spaces):
        op = MatrixFreeOperator(laplacian_apply(64), spaces, spaces)
        with pytest.raises(NotImplementedError):
            op.triplets()
        with pytest.raises(NotImplementedError):
            op.rmatvec(np.zeros(64))


class TestCopartitioning:
    def test_full_dependence_reads_everything(self, spaces):
        op = MatrixFreeOperator(laplacian_apply(64), spaces, spaces)
        P = Partition.equal(op.range_space, 4)
        KP, DP = matvec_copartition(op, P)
        for c in range(4):
            assert DP[c].volume == 64  # conservative all-to-all

    def test_declared_dependence_gives_tight_halos(self, spaces):
        n = spaces.volume
        op = MatrixFreeOperator(
            laplacian_apply(n), spaces, spaces,
            dependence=stencil_dependence(n, spaces),
        )
        P = Partition.equal(op.range_space, 4)
        KP, DP = matvec_copartition(op, P)
        # Interior pieces read their 16 own entries plus 2 ghosts.
        assert DP[1].volume == 18
        assert DP[0].volume == 17  # boundary piece: one ghost

    def test_piece_kernels_reassemble(self, spaces, rng):
        n = spaces.volume
        op = MatrixFreeOperator(
            laplacian_apply(n), spaces, spaces,
            dependence=stencil_dependence(n, spaces),
        )
        x = rng.normal(size=n)
        P = Partition.equal(op.range_space, 4)
        KP, DP = matvec_copartition(op, P)
        y = np.zeros(n)
        for c in range(4):
            pk = op.make_piece_kernel(KP[c], DP[c], P[c])
            y[P[c].indices] = pk(x[DP[c].indices])
        np.testing.assert_allclose(y, op.spmv(x))

    def test_transpose_kernels_unsupported(self, spaces):
        op = MatrixFreeOperator(laplacian_apply(64), spaces, spaces)
        P = Partition.equal(op.range_space, 2)
        KP, DP = matvec_copartition(op, P)
        with pytest.raises(NotImplementedError):
            op.make_piece_kernel(KP[0], DP[0], P[0], transpose=True)


class TestSolverIntegration:
    def test_cg_on_matrix_free_operator(self, rng):
        n = 128
        D = IndexSpace.linear(n, name="D")
        op = MatrixFreeOperator(
            laplacian_apply(n), D, D,
            dependence=stencil_dependence(n, D),
            flops_per_row=6.0,
            bytes_per_row=48.0,
        )
        b = rng.normal(size=n)
        planner = make_planner(op, b, machine=lassen(2))
        result = CGSolver(planner).solve(tolerance=1e-10, max_iterations=500)
        assert result.converged
        x = planner.get_array(SOL)
        ref = sp.diags([-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n), format="csr")
        assert np.linalg.norm(ref @ x - b) < 1e-8

    def test_bad_apply_shape_detected(self, spaces):
        op = MatrixFreeOperator(lambda x, r, c: np.zeros(3), spaces, spaces)
        P = Partition.equal(op.range_space, 2)
        KP, DP = matvec_copartition(op, P)
        pk = op.make_piece_kernel(KP[0], DP[0], P[0])
        with pytest.raises(ValueError):
            pk(np.zeros(DP[0].volume))

    def test_mixed_stored_and_matrix_free_system(self, rng):
        """A multi-operator system combining a stored CSR block and a
        matrix-free perturbation — mixed 'formats' in one system (§7)."""
        from repro.core import Planner
        from repro.runtime import Runtime, ShardedMapper
        from repro.sparse import CSRMatrix

        n = 64
        machine = lassen(1)
        runtime = Runtime(machine=machine, mapper=ShardedMapper(machine))
        planner = Planner(runtime)
        D = IndexSpace.linear(n)
        base = sp.diags([-1.0, 4.0, -1.0], [-1, 0, 1], shape=(n, n), format="csr")
        stored = CSRMatrix.from_scipy(base, domain_space=D, range_space=D)

        def shift_apply(x, rows, cols):
            xf = np.zeros(n)
            xf[cols] = x
            return 0.5 * xf[rows]  # +0.5 I, matrix-free

        free = MatrixFreeOperator(
            shift_apply, D, D,
            dependence=ComputedRelation(
                IndexSpace.linear(n), D,
                forward=lambda k: k, backward=lambda j: np.asarray(j),
            ),
        )
        b = rng.normal(size=n)
        part = Partition.equal(D, 4)
        sid = planner.add_sol_vector((D, np.zeros(n)), part)
        rid = planner.add_rhs_vector((D, b), part)
        planner.add_operator(stored, sid, rid)
        planner.add_operator(free, sid, rid)
        result = CGSolver(planner).solve(tolerance=1e-10, max_iterations=500)
        assert result.converged
        x = planner.get_array(SOL)
        A_total = base + 0.5 * sp.identity(n)
        assert np.linalg.norm(A_total @ x - b) < 1e-8


class TestFullRelation:
    def test_image_preimage(self):
        I, J = IndexSpace.linear(3), IndexSpace.linear(5)
        rel = FullRelation(I, J)
        np.testing.assert_array_equal(rel.image_indices(np.array([1])), np.arange(5))
        np.testing.assert_array_equal(rel.preimage_indices(np.array([4])), np.arange(3))
        assert rel.image_indices(np.array([], dtype=np.int64)).size == 0
        assert rel.pairs().shape == (15, 2)
