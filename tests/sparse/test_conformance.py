"""Satellite 1: the auto-enrolled conformance matrix.

Every registered format — built-in or plugin — runs every applicable
check from :func:`conformance.make_format_conformance_suite`.  The
parametrization reads the live registry, so ``register_format`` alone
enrolls a new format here.
"""

import pytest

from repro.sparse.plugin import format_names

from .conformance import make_format_conformance_suite

CASES = [
    (fmt, check)
    for fmt in format_names()
    for check in make_format_conformance_suite(fmt)
]


@pytest.mark.parametrize(
    ("fmt", "check"), CASES, ids=[f"{f}-{c}" for f, c in CASES]
)
def test_format_conformance(fmt, check):
    make_format_conformance_suite(fmt)[check]()
