"""Auto-enrolled format conformance suite (satellite 1).

:func:`make_format_conformance_suite` builds, for any *registered*
format name, a dictionary of named conformance checks — the behavioural
contract a format must satisfy to participate in co-partitioning, the
differential oracle, and the replay matrices:

* ``round_trip_csr`` — converting to the format and expanding back
  through ``to_scipy`` preserves the linear operator exactly (stored
  formats only; a matrix-free operator has no triplets to expand).
* ``spmv_matches_csr`` — the format's whole-matrix SpMV agrees with the
  SciPy/CSR reference.
* ``piece_spmv_matches_csr`` — piece kernels compiled under §3.1
  co-partitioning reassemble the global SpMV.
* ``subset_descriptors`` — co-partitioned subset descriptors are
  well-formed: right index spaces, sorted unique indices, and the
  column/row images of each kernel piece contained in the piece's
  domain/range subsets (the precondition ``make_piece_kernel``
  documents).
* ``edge_<name>`` — the empty, singleton, ragged-banded, and
  unsymmetric edge matrices build, round-trip (stored formats), and
  SpMV correctly.

The suite reads everything it needs from the format's
:class:`~repro.sparse.plugin.FormatSpec` (``size_multiple`` scales the
test matrices, ``stored`` gates the triplet-based checks), so a plugin
registered via :func:`~repro.sparse.plugin.register_format` is enrolled
with zero test edits — ``test_conformance.py`` parametrizes over the
live registry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np
import scipy.sparse as sp

from repro.core.projection import col_K_to_D, row_K_to_R, row_R_to_K
from repro.runtime import Partition
from repro.sparse.plugin import build_format, get_spec

__all__ = ["conformance_matrices", "make_format_conformance_suite"]


def _banded(n: int) -> sp.csr_matrix:
    """Ragged band: tridiagonal plus a sparse outer band, so row lengths
    vary (the case that separates per-slice from global padding)."""
    A = sp.diags(
        [np.full(n - 1, -1.0), np.full(n, 4.0), np.full(n - 1, -1.0)],
        offsets=(-1, 0, 1),
        format="lil",
    )
    for i in range(0, n, 3):
        j = (i * 5 + 2) % n
        A[i, j] += 0.5
    return sp.csr_matrix(A)


def _unsymmetric(n: int) -> sp.csr_matrix:
    """Deterministic unsymmetric pattern with uneven row lengths."""
    rng = np.random.default_rng(1234)
    A = sp.random(n, n, density=0.2, random_state=rng, format="csr")
    A.data[:] = rng.uniform(-2.0, 2.0, A.nnz)
    A = A + sp.eye(n, format="csr")  # keep it structurally nonsingular
    A.sum_duplicates()
    return sp.csr_matrix(A)


def conformance_matrices(fmt: str) -> List[Tuple[str, sp.csr_matrix]]:
    """The edge-matrix battery, scaled to the format's size multiple."""
    m = get_spec(fmt).size_multiple
    n = 12 * m
    single = sp.csr_matrix(
        (np.array([3.0]), (np.array([0]), np.array([0]))), shape=(m, m)
    )
    return [
        ("empty", sp.csr_matrix((n, n))),
        ("singleton", single),
        ("banded", _banded(n)),
        ("unsymmetric", _unsymmetric(n)),
    ]


def _reference_problem(fmt: str) -> Tuple[sp.csr_matrix, np.ndarray]:
    A = _unsymmetric(12 * get_spec(fmt).size_multiple)
    x = np.cos(1.0 + np.arange(A.shape[1], dtype=np.float64))
    return A, x


def _check_round_trip(fmt: str, A: sp.csr_matrix) -> None:
    op = build_format(fmt, A)
    assert op.shape == A.shape, (fmt, op.shape, A.shape)
    back = sp.csr_matrix(op.to_scipy())
    back.sum_duplicates()
    np.testing.assert_allclose(back.toarray(), A.toarray(), atol=1e-12)


def _check_spmv(fmt: str, A: sp.csr_matrix, x: np.ndarray) -> None:
    op = build_format(fmt, A)
    np.testing.assert_allclose(op.spmv(x), A @ x, atol=1e-10)


def _copartition(op, n_pieces: int):
    P = Partition.equal(op.range_space, n_pieces)
    KP = row_R_to_K(op, P)
    return KP, col_K_to_D(op, KP), row_K_to_R(op, KP)


def _check_piece_spmv(fmt: str, A: sp.csr_matrix, x: np.ndarray) -> None:
    op = build_format(fmt, A)
    for n_pieces in (1, 3):
        KP, DP, RP = _copartition(op, n_pieces)
        y = np.zeros(A.shape[0])
        for c in range(n_pieces):
            if RP[c].is_empty:
                continue
            pk = op.make_piece_kernel(KP[c], DP[c], RP[c])
            np.add.at(y, RP[c].indices, pk(x[DP[c].indices]))
        np.testing.assert_allclose(y, A @ x, atol=1e-10)


def _assert_subset_well_formed(sub, space, label: str) -> None:
    assert sub.space is space, f"{label}: subset lives in the wrong index space"
    idx = np.asarray(sub.indices)
    assert idx.size == sub.volume, f"{label}: volume disagrees with indices"
    if idx.size:
        assert idx.min() >= 0 and idx.max() < space.volume, (
            f"{label}: indices escape the space"
        )
        assert np.all(np.diff(idx) > 0), f"{label}: indices not sorted unique"


def _check_subset_descriptors(fmt: str, A: sp.csr_matrix) -> None:
    op = build_format(fmt, A)
    KP, DP, RP = _copartition(op, 3)
    seen_kernel = []
    for c in range(3):
        _assert_subset_well_formed(KP[c], op.kernel_space, f"{fmt}/K[{c}]")
        _assert_subset_well_formed(DP[c], op.domain_space, f"{fmt}/D[{c}]")
        _assert_subset_well_formed(RP[c], op.range_space, f"{fmt}/R[{c}]")
        if KP[c].is_empty:
            continue
        seen_kernel.append(np.asarray(KP[c].indices))
        # The piece's image under the relations must be contained in the
        # descriptors make_piece_kernel receives — otherwise piece
        # compilation reads out of bounds.
        cols = op.col_relation.image_indices(np.asarray(KP[c].indices))
        rows = op.row_relation.image_indices(np.asarray(KP[c].indices))
        assert np.isin(cols, DP[c].indices).all(), (
            f"{fmt}: column image escapes the domain subset of piece {c}"
        )
        assert np.isin(rows, RP[c].indices).all(), (
            f"{fmt}: row image escapes the range subset of piece {c}"
        )
    if seen_kernel:
        flat = np.concatenate(seen_kernel)
        assert flat.size == np.unique(flat).size, (
            f"{fmt}: kernel pieces overlap"
        )


def make_format_conformance_suite(fmt: str) -> Dict[str, Callable[[], None]]:
    """Named conformance checks for one registered format."""
    spec = get_spec(fmt)
    A, x = _reference_problem(fmt)
    suite: Dict[str, Callable[[], None]] = {}
    if spec.stored:
        suite["round_trip_csr"] = lambda: _check_round_trip(fmt, A)
    suite["spmv_matches_csr"] = lambda: _check_spmv(fmt, A, x)
    suite["piece_spmv_matches_csr"] = lambda: _check_piece_spmv(fmt, A, x)
    suite["subset_descriptors"] = lambda: _check_subset_descriptors(fmt, A)
    for name, M in conformance_matrices(fmt):
        def edge_check(M=M) -> None:
            xe = np.cos(1.0 + np.arange(M.shape[1], dtype=np.float64))
            _check_spmv(fmt, M, xe)
            if spec.stored:
                _check_round_trip(fmt, M)
        suite[f"edge_{name}"] = edge_check
    return suite
