"""RelationMatrix: the general (possibly many-to-many) KDR matrix of
paper equation (2), including aliasing semantics."""

import numpy as np
import pytest

from repro.runtime import IndexSpace
from repro.runtime.deppart import FunctionalRelation, IntervalRelation, PairsRelation
from repro.sparse import COOMatrix, RelationMatrix


def test_functional_relations_reduce_to_coo(rng):
    """With one-to-one relations the general definition collapses to COO."""
    K = IndexSpace.linear(6)
    D = IndexSpace.linear(5)
    R = IndexSpace.linear(4)
    rows = np.array([0, 1, 1, 2, 3, 3])
    cols = np.array([0, 1, 2, 3, 4, 0])
    vals = rng.normal(size=6)
    m = RelationMatrix(
        vals,
        FunctionalRelation(K, D, cols),
        FunctionalRelation(K, R, rows),
    )
    coo = COOMatrix(vals, rows, cols, domain_space=D, range_space=R, kernel_space=IndexSpace.linear(6))
    np.testing.assert_allclose(m.to_dense(), coo.to_dense())
    x = rng.normal(size=5)
    np.testing.assert_allclose(m.spmv(x), coo.spmv(x))


def test_aliasing_one_value_into_many_entries():
    """A single stored value aliased into a rectangle of entries: each
    (i, j) in row(k) × col(k) receives A_k (paper §3, many-to-many)."""
    K = IndexSpace.linear(1)
    D = IndexSpace.linear(3)
    R = IndexSpace.linear(2)
    col_rel = PairsRelation(K, D, np.array([[0, 0], [0, 2]]))
    row_rel = PairsRelation(K, R, np.array([[0, 0], [0, 1]]))
    m = RelationMatrix(np.array([5.0]), col_rel, row_rel)
    expected = np.array([[5.0, 0.0, 5.0], [5.0, 0.0, 5.0]])
    np.testing.assert_allclose(m.to_dense(), expected)
    # The stored count is 1; the logical entry count is 4.
    assert m.nnz == 1
    rows, cols, vals = m.triplets()
    assert vals.size == 4


def test_overlapping_aliases_sum():
    """Two kernel points aliasing into the same entry: contributions add
    (the implicit sums of paper Figure 4)."""
    K = IndexSpace.linear(2)
    D = IndexSpace.linear(2)
    R = IndexSpace.linear(2)
    col_rel = FunctionalRelation(K, D, np.array([0, 0]))
    row_rel = FunctionalRelation(K, R, np.array([1, 1]))
    m = RelationMatrix(np.array([2.0, 3.0]), col_rel, row_rel)
    np.testing.assert_allclose(m.to_dense(), [[0.0, 0.0], [5.0, 0.0]])


def test_interval_row_relation_supported(rng):
    """A CSR-shaped relation pair plugged into the general matrix."""
    K = IndexSpace.linear(5)
    D = IndexSpace.linear(4)
    R = IndexSpace.linear(3)
    rowptr = np.array([0, 2, 2, 5])
    cols = np.array([0, 2, 1, 2, 3])
    vals = rng.normal(size=5)
    m = RelationMatrix(
        vals,
        FunctionalRelation(K, D, cols),
        IntervalRelation(K, R, rowptr[:-1], rowptr[1:]),
    )
    dense = np.zeros((3, 4))
    dense[0, 0], dense[0, 2] = vals[0], vals[1]
    dense[2, 1], dense[2, 2], dense[2, 3] = vals[2], vals[3], vals[4]
    np.testing.assert_allclose(m.to_dense(), dense)


def test_triplets_restricted_to_kernel_subset():
    K = IndexSpace.linear(2)
    D = IndexSpace.linear(2)
    R = IndexSpace.linear(2)
    m = RelationMatrix(
        np.array([1.0, 2.0]),
        FunctionalRelation(K, D, np.array([0, 1])),
        FunctionalRelation(K, R, np.array([0, 1])),
    )
    r, c, v = m.triplets(np.array([1]))
    assert list(zip(r, c, v)) == [(1, 1, 2.0)]
    r, c, v = m.triplets(np.array([], dtype=np.int64))
    assert v.size == 0


def test_mismatched_kernel_spaces_rejected():
    K1, K2 = IndexSpace.linear(2), IndexSpace.linear(2)
    D = IndexSpace.linear(2)
    with pytest.raises(ValueError):
        RelationMatrix(
            np.ones(2),
            FunctionalRelation(K1, D, np.zeros(2, dtype=np.int64)),
            FunctionalRelation(K2, D, np.zeros(2, dtype=np.int64)),
        )


def test_entry_count_validated():
    K = IndexSpace.linear(3)
    D = IndexSpace.linear(2)
    rel = FunctionalRelation(K, D, np.zeros(3, dtype=np.int64))
    with pytest.raises(ValueError):
        RelationMatrix(np.ones(2), rel, rel)


def test_rmatvec_matches_transpose(rng):
    K = IndexSpace.linear(4)
    D = IndexSpace.linear(3)
    R = IndexSpace.linear(3)
    m = RelationMatrix(
        rng.normal(size=4),
        FunctionalRelation(K, D, np.array([0, 1, 2, 0])),
        FunctionalRelation(K, R, np.array([0, 0, 1, 2])),
    )
    v = rng.normal(size=3)
    np.testing.assert_allclose(m.rmatvec(v), m.to_dense().T @ v)
