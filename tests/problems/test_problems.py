"""Workload generators: stencils, splits, the boundary scenario,
synthetic systems."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.problems import (
    STENCILS,
    convection_diffusion_2d,
    coupled_boundary_problem,
    grid_shape_for,
    laplacian_csr,
    laplacian_scipy,
    random_diag_dominant,
    random_spd,
    split_laplacian_2d,
    stencil_nnz_estimate,
    stencil_offsets,
    symmetric_indefinite,
    system_with_solution,
    tridiagonal_toeplitz,
)

STENCIL_SHAPES = {"1d3": (64,), "2d5": (12, 12), "3d7": (6, 6, 6), "3d27": (6, 6, 6)}


@pytest.mark.parametrize("kind", sorted(STENCILS))
class TestStencils:
    def test_offsets_and_weights(self, kind):
        offsets, weights = stencil_offsets(kind)
        counts = {"1d3": 3, "2d5": 5, "3d7": 7, "3d27": 27}
        assert offsets.shape == (counts[kind], STENCILS[kind])
        assert weights.sum() == pytest.approx(0.0)  # zero row sums interior
        assert weights[0] > 0 and (weights[1:] == -1).all()

    def test_matrix_symmetric(self, kind):
        A = laplacian_scipy(kind, STENCIL_SHAPES[kind])
        assert (abs(A - A.T)).nnz == 0

    def test_positive_definite(self, kind):
        A = laplacian_scipy(kind, STENCIL_SHAPES[kind])
        eigs = np.linalg.eigvalsh(A.toarray())
        assert eigs.min() > 0

    def test_interior_row_sums_zero_boundary_positive(self, kind):
        A = laplacian_scipy(kind, STENCIL_SHAPES[kind])
        sums = np.asarray(A.sum(axis=1)).ravel()
        assert sums.min() >= -1e-12
        assert sums.max() > 0  # Dirichlet boundary rows

    def test_nnz_estimate_exact(self, kind):
        shape = STENCIL_SHAPES[kind]
        assert stencil_nnz_estimate(kind, shape) == laplacian_scipy(kind, shape).nnz

    def test_kdr_wrapper_equivalent(self, kind, rng):
        shape = STENCIL_SHAPES[kind]
        A = laplacian_scipy(kind, shape)
        m = laplacian_csr(kind, shape)
        x = rng.normal(size=A.shape[0])
        np.testing.assert_allclose(m.spmv(x), A @ x)
        assert m.domain_space is m.range_space  # square, shared space

    def test_grid_shape_for_targets(self, kind):
        shape = grid_shape_for(kind, 2**12)
        n = int(np.prod(shape))
        assert 2**11 <= n <= 2**13
        assert len(shape) == STENCILS[kind]


def test_1d3_matches_tridiagonal():
    A = laplacian_scipy("1d3", (32,))
    np.testing.assert_allclose(A.toarray(), tridiagonal_toeplitz(32).toarray())


def test_2d5_matches_kronecker():
    """5-point 2-D Laplacian = I ⊗ T + T ⊗ I."""
    n = 8
    T = tridiagonal_toeplitz(n)
    I = sp.identity(n)
    expected = (sp.kron(I, T) + sp.kron(T, I)).toarray()
    np.testing.assert_allclose(laplacian_scipy("2d5", (n, n)).toarray(), expected)


def test_unknown_stencil_rejected():
    with pytest.raises(KeyError):
        stencil_offsets("9pt")
    with pytest.raises(ValueError):
        laplacian_scipy("2d5", (4,))


class TestSplit:
    def test_two_band_split_is_fig9_structure(self):
        s = split_laplacian_2d((16, 16), 2)
        assert len(s.tiles) == 4  # A11, A22, A12, A21
        grid = s.tile_grid()
        assert grid.all()  # every band pair coupled for 2 bands

    def test_band_tiles_reassemble_global(self, rng):
        s = split_laplacian_2d((16, 16), 4)
        x = rng.normal(size=256)
        y = np.zeros(256)
        off = np.concatenate([[0], np.cumsum(s.band_sizes)])
        for m, src, dst in s.tiles:
            y[off[dst]:off[dst + 1]] += m.spmv(x[off[src]:off[src + 1]])
        np.testing.assert_allclose(y, s.global_matrix @ x)

    def test_tile_grid_banded(self):
        s = split_laplacian_2d((32, 32), 8)
        grid = s.tile_grid()
        for i in range(8):
            for j in range(8):
                assert grid[i, j] == (abs(i - j) <= 1)

    def test_band_count_validated(self):
        with pytest.raises(ValueError):
            split_laplacian_2d((4, 4), 8)


class TestBoundary:
    def test_components_partition_the_box(self):
        p = coupled_boundary_problem((6, 6, 4))
        assert p.n_interior + p.n_boundary == 6 * 6 * 4
        assert p.n_boundary == 36
        # The boundary ids are strided (non-contiguous).
        assert np.any(np.diff(p.boundary_ids) > 1)

    def test_tiles_reassemble_global(self, rng):
        p = coupled_boundary_problem((6, 6, 4))
        xi = rng.normal(size=p.n_interior)
        xb = rng.normal(size=p.n_boundary)
        yi, yb = np.zeros(p.n_interior), np.zeros(p.n_boundary)
        xs, ys = [xi, xb], [yi, yb]
        for m, src, dst in p.tiles:
            ys[dst] += m.spmv(xs[src])
        got = p.assemble_global_vector(yi, yb)
        expected = p.global_matrix @ p.assemble_global_vector(xi, xb)
        np.testing.assert_allclose(got, expected)

    def test_needs_two_layers(self):
        with pytest.raises(ValueError):
            coupled_boundary_problem((4, 4, 1))


class TestGenerators:
    def test_random_spd_is_spd(self):
        A = random_spd(30, seed=1)
        assert (abs(A - A.T)).nnz == 0
        assert np.linalg.eigvalsh(A.toarray()).min() > 0

    def test_diag_dominant(self):
        A = random_diag_dominant(30, seed=2).toarray()
        off = np.abs(A).sum(axis=1) - np.abs(np.diag(A))
        assert (np.abs(np.diag(A)) > off).all()

    def test_diag_dominant_symmetric_option(self):
        A = random_diag_dominant(20, seed=3, symmetric=True)
        np.testing.assert_allclose(A.toarray(), A.toarray().T)

    def test_convection_diffusion_nonsymmetric_nonsingular(self):
        A = convection_diffusion_2d((6, 6))
        assert (abs(A - A.T)).nnz > 0
        assert np.linalg.matrix_rank(A.toarray()) == 36

    def test_symmetric_indefinite_signs(self):
        eigs = np.linalg.eigvalsh(symmetric_indefinite(40, seed=4).toarray())
        assert eigs.min() < 0 < eigs.max()

    def test_manufactured_solution(self):
        A, b, x = system_with_solution(tridiagonal_toeplitz(10), seed=5)
        np.testing.assert_allclose(A @ x, b)

    def test_determinism(self):
        a1 = random_spd(16, seed=6).toarray()
        a2 = random_spd(16, seed=6).toarray()
        np.testing.assert_array_equal(a1, a2)
