"""The closed-form model validated against the executable paths."""

import numpy as np
import pytest

from repro.api import make_planner
from repro.baselines import PETScLikeLibrary, TrilinosLikeLibrary
from repro.bench.analytic import (
    BASELINE_EXTRA_DOTS,
    OP_COUNTS,
    baseline_time_per_iteration,
    halo_cells,
    legion_time_per_iteration,
)
from repro.core.solvers import SOLVER_REGISTRY
from repro.problems import grid_shape_for, laplacian_scipy
from repro.runtime import lassen, lassen_scaled


class TestOpCounts:
    """The model's op tables must match what the solvers actually do."""

    @pytest.mark.parametrize("solver", ["cg", "bicgstab"])
    def test_counts_match_executed_tasks(self, solver, rng):
        A = laplacian_scipy("2d5", (32, 32))
        b = rng.random(A.shape[0])
        machine = lassen(1)
        planner = make_planner(A, b, machine=machine)
        planner.runtime.engine.keep_timeline = True
        ksm = SOLVER_REGISTRY[solver](planner)
        n0 = len(planner.runtime.engine.timeline)
        ksm.run_fixed(1)
        names = [e.name for e in planner.runtime.engine.timeline[n0:]]
        vp = 4
        ops = OP_COUNTS[solver]
        assert sum(1 for n in names if n.startswith("spmv")) == ops["spmv"] * vp
        assert sum(1 for n in names if n == "dot_partial") == ops["dot"] * vp
        assert (
            sum(1 for n in names if n in ("axpy", "xpay"))
            == ops["axpy"] * vp
        )
        assert sum(1 for n in names if n == "copy") == ops["copy"] * vp

    def test_baseline_extra_dots_match_library(self, rng):
        A = laplacian_scipy("2d5", (16, 16))
        b = rng.random(256)
        for solver in ("cg", "bicgstab"):
            lib = PETScLikeLibrary(A, b, lassen(1))
            lib.run(solver, 10)
            per_iter = OP_COUNTS[solver]["dot"] + BASELINE_EXTRA_DOTS[solver]
            if solver == "bicgstab":
                per_iter = 5  # library computes exactly the 5 recurrences
            # Setup adds a handful of extra reductions; per-iteration rate
            # must match exactly.
            lib2 = PETScLikeLibrary(A, b, lassen(1))
            lib2.run(solver, 20)
            delta = lib2.bsp.total_allreduces - lib.bsp.total_allreduces
            assert delta == per_iter * 10


class TestHaloCells:
    def test_cross_sections(self):
        assert halo_cells("1d3", (64,)) == 2
        assert halo_cells("2d5", (32, 16)) == 32
        assert halo_cells("3d7", (8, 4, 4)) == 32


class TestModelAgainstEngine:
    @pytest.mark.parametrize("solver", ["cg", "bicgstab"])
    def test_legion_model_within_factor_two(self, solver, rng):
        """At an executable size, the closed-form time is within 2× of
        the engine's measurement (it is a first-order model)."""
        machine = lassen_scaled(1, 16.0)
        n_target = 2**18
        shape = grid_shape_for("2d5", n_target)
        A = laplacian_scipy("2d5", shape)
        b = rng.random(A.shape[0])
        planner = make_planner(A, b, machine=machine)
        ksm = SOLVER_REGISTRY[solver](planner)
        ksm.run_fixed(3)
        res = ksm.run_fixed(8)
        measured = float(np.median(res.iteration_times))
        model = legion_time_per_iteration(
            solver, "2d5", A.shape[0], lassen_scaled(1, 16.0), vp=4
        )
        assert model == pytest.approx(measured, rel=1.0)

    @pytest.mark.parametrize("library", ["petsc", "trilinos"])
    def test_baseline_model_within_factor_two(self, library, rng):
        machine = lassen_scaled(1, 16.0)
        shape = grid_shape_for("2d5", 2**18)
        A = laplacian_scipy("2d5", shape)
        b = rng.random(A.shape[0])
        cls = PETScLikeLibrary if library == "petsc" else TrilinosLikeLibrary
        measured = cls(A, b, machine).benchmark("cg", warmup=3, timed=10)
        model = baseline_time_per_iteration(
            "cg", "2d5", A.shape[0], lassen_scaled(1, 16.0), library
        )
        assert model == pytest.approx(measured, rel=1.0)


class TestModelShapes:
    """The full-scale model reproduces the paper's qualitative claims."""

    def test_overhead_plateau_at_small_sizes(self):
        m = lassen(16)
        t_small = legion_time_per_iteration("cg", "2d5", 2**14, m, vp=64)
        t_smaller = legion_time_per_iteration("cg", "2d5", 2**12, m, vp=64)
        assert t_small == pytest.approx(t_smaller, rel=0.05)  # flat floor

    def test_bandwidth_asymptote_at_large_sizes(self):
        m = lassen(16)
        t1 = legion_time_per_iteration("cg", "2d5", 2**30, m, vp=64)
        t2 = legion_time_per_iteration("cg", "2d5", 2**32, m, vp=64)
        assert t2 == pytest.approx(4 * t1, rel=0.25)  # linear in N

    def test_baselines_win_small_legion_wins_large(self):
        m = lassen(16)
        small, large = 2**16, 2**32
        for solver in ("cg", "bicgstab"):
            leg_s = legion_time_per_iteration(solver, "2d5", small, m, vp=64)
            pet_s = baseline_time_per_iteration(solver, "2d5", small, m, "petsc")
            assert leg_s > pet_s  # runtime overhead dominates
            leg_l = legion_time_per_iteration(solver, "2d5", large, m, vp=64)
            pet_l = baseline_time_per_iteration(solver, "2d5", large, m, "petsc")
            tri_l = baseline_time_per_iteration(solver, "2d5", large, m, "trilinos")
            # The paper's large-size ordering: LegionSolvers leads PETSc
            # clearly in CG; BiCGStab is parity (Figure 8's leadership is
            # "in many runs of CG and GMRES").  Trilinos trails both.
            if solver == "cg":
                assert leg_l < pet_l
            else:
                assert leg_l == pytest.approx(pet_l, rel=0.06)
            assert leg_l < tri_l and pet_l < tri_l

    def test_paper_magnitude_improvements_at_scale(self):
        """Geomean improvement on the largest sizes lands in the paper's
        ballpark: a few percent vs PETSc, ~10% vs Trilinos."""
        m = lassen(16)
        sizes = [2**28, 2**30, 2**32]
        ratios_p, ratios_t = [], []
        for solver in ("cg", "bicgstab"):
            for n in sizes:
                leg = legion_time_per_iteration(solver, "2d5", n, m, vp=64)
                if solver == "cg":  # the paper excludes PETSc from GMRES;
                    # BiCGStab is parity, so PETSc's headline gap is CG-driven
                    ratios_p.append(leg / baseline_time_per_iteration(solver, "2d5", n, m, "petsc"))
                ratios_t.append(leg / baseline_time_per_iteration(solver, "2d5", n, m, "trilinos"))
        imp_p = 1 - float(np.exp(np.mean(np.log(ratios_p))))
        imp_t = 1 - float(np.exp(np.mean(np.log(ratios_t))))
        assert 0.0 < imp_p < 0.15  # paper: 5.4%
        assert 0.03 < imp_t < 0.25  # paper: 9.6%
        assert imp_t > imp_p
