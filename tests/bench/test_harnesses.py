"""Figure harnesses: small runs exercise the full pipelines and the
reproduction's qualitative claims."""

import numpy as np
import pytest

from repro.bench import (
    run_fig10,
    run_fig8,
    run_fig9,
    summarize_fig10,
    summarize_fig8,
    summarize_fig9,
)
from repro.bench.fig9 import bicgstab_time_per_iteration
from repro.bench.report import format_table, geomean, geomean_ratio_on_largest
from repro.runtime import lassen_scaled


class TestReport:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 3.25]], "{:.1f}")
        lines = out.splitlines()
        assert len(lines) == 4
        assert "2.5" in out and "3.2" in out

    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        assert np.isnan(geomean([]))

    def test_geomean_ratio_on_largest(self):
        sizes = [10, 20, 30, 40]
        ours = {n: 1.0 for n in sizes}
        theirs = {n: 2.0 for n in sizes}
        assert geomean_ratio_on_largest(sizes, ours, theirs, 2) == pytest.approx(0.5)
        assert geomean_ratio_on_largest([], {}, {}) is None


class TestFig8:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fig8(
            stencils=("2d5",),
            solvers=("cg",),
            sizes=[2**12, 2**18],
            nodes=1,
            warmup=2,
            timed=6,
        )

    def test_all_libraries_present(self, rows):
        libs = {r.library for r in rows}
        assert libs == {"legion", "petsc", "trilinos"}
        sizes = {r.n_unknowns for r in rows}
        assert len(sizes) == 2

    def test_paper_shape(self, rows):
        """Baselines lead at the small size; LegionSolvers is competitive
        or ahead at the large size."""
        def t(lib, n):
            return next(
                r.time_per_iteration for r in rows
                if r.library == lib and r.n_unknowns == n
            )

        small, large = sorted({r.n_unknowns for r in rows})
        assert t("legion", small) > t("petsc", small)
        assert t("legion", large) < t("trilinos", large)

    def test_gmres_excludes_petsc(self):
        rows = run_fig8(
            stencils=("1d3",), solvers=("gmres",), sizes=[2**12],
            nodes=1, warmup=1, timed=2,
        )
        assert {r.library for r in rows} == {"legion", "trilinos"}

    def test_summary_prints_geomeans(self, rows):
        text = summarize_fig8(rows)
        assert "geomean improvement vs petsc" in text
        assert "paper: +5.4%" in text
        assert "2d5 / cg" in text

    def test_model_mode_runs_full_scale(self):
        rows = run_fig8(
            stencils=("2d5",), solvers=("cg",), sizes=[2**28, 2**32],
            nodes=16, mode="model",
        )
        big = [r for r in rows if r.n_unknowns == 2**32]
        leg = next(r for r in big if r.library == "legion")
        tri = next(r for r in big if r.library == "trilinos")
        assert leg.time_per_iteration < tri.time_per_iteration
        assert leg.mode == "model"

    def test_oversized_real_problems_skipped(self):
        rows = run_fig8(
            stencils=("3d27",), solvers=("cg",), sizes=[2**24],
            nodes=1, warmup=1, timed=2, max_real_nnz=1_000_000,
        )
        assert rows == []


class TestFig9:
    def test_multiop_overhead_at_small_sizes(self):
        m_single = lassen_scaled(2, 16.0)
        t_single = bicgstab_time_per_iteration((32, 32), 1, m_single, warmup=1, timed=4)
        m_multi = lassen_scaled(2, 16.0)
        t_multi = bicgstab_time_per_iteration((32, 32), 2, m_multi, warmup=1, timed=4)
        assert t_multi > t_single  # fixed task-launch overhead (paper §6.2)

    def test_run_and_summary(self):
        rows = run_fig9(exponents=(5, 6), warmup=1, timed=3)
        assert len(rows) == 4
        text = summarize_fig9(rows)
        assert "single" in text and "multi" in text


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig10(
            grid_exp=9, nodes=4, iterations=80, load_period=20,
            rebalance_period=10, scale=16.0, seed=1,
        )

    def test_paired_runs_same_length(self, result):
        assert result.iteration_times_static.shape == result.iteration_times_dynamic.shape
        assert (result.iteration_times_static > 0).all()

    def test_rebalancing_migrates_tiles(self, result):
        assert result.migrations > 0

    def test_dynamic_reduces_total_time(self, result):
        # Small configuration: require improvement, not the paper's 66%.
        assert result.reduction > 0.0

    def test_summary_mentions_paper_number(self, result):
        text = summarize_fig10(result)
        assert "66%" in text
        assert "migrations" in text
