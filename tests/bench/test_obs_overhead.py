"""The sampled-telemetry overhead section and its CI gate."""

import pytest

from repro.bench.wallclock import (
    WallclockCase,
    _measure_obs_overhead,
    require_obs_overhead,
)


def overhead_report(ratio=1.01, case="cg-2d5-1m", rate=0.1):
    return {
        "obs_overhead": {
            "case": case,
            "sample_rate": rate,
            "overhead_ratio": ratio,
            "off_median_s": 0.1,
            "sampled_median_s": 0.1 * ratio,
            "delta_median_s": 0.1 * (ratio - 1.0),
        }
    }


class TestGate:
    def test_under_threshold_passes(self):
        assert require_obs_overhead(overhead_report(1.02), max_ratio=1.03) == []

    def test_over_threshold_fails_with_actionable_message(self):
        (msg,) = require_obs_overhead(overhead_report(1.07), max_ratio=1.03)
        assert "1.070x" in msg
        assert "1.03x" in msg
        assert "sampled:0.1" in msg

    def test_boundary_is_inclusive(self):
        assert require_obs_overhead(overhead_report(1.03), max_ratio=1.03) == []

    def test_missing_section_fails_closed(self):
        (msg,) = require_obs_overhead({}, max_ratio=1.03)
        assert "no 'obs_overhead' section" in msg

    def test_unavailable_ratio_fails_closed(self):
        report = overhead_report()
        report["obs_overhead"]["overhead_ratio"] = None
        (msg,) = require_obs_overhead(report, max_ratio=1.03)
        assert "unavailable" in msg


class TestMeasurement:
    def test_measurement_structure_on_tiny_case(self):
        """A fast structural smoke: the real acceptance ratio is gated
        in CI on the production-sized case via `repro bench
        --max-obs-overhead`; here a tiny case verifies the estimator's
        plumbing (paired sweeps, self-accounting, report keys)."""
        case = WallclockCase("cg-2d5-tiny", "2d5", "cg", 4096, 2, 3)
        logs = []
        section = _measure_obs_overhead(
            case=case, repeats=3, warmup=1, log=logs.append
        )
        assert section["case"] == "cg-2d5-tiny"
        assert section["sample_rate"] == 0.1
        assert section["repeats"] == 3
        assert section["off_median_s"] > 0.0
        assert section["sampled_median_s"] > 0.0
        assert section["overhead_ratio"] == pytest.approx(
            (section["off_median_s"] + section["delta_median_s"])
            / section["off_median_s"]
        )
        # Probe self-accounting made it into the section.
        assert section["probe_calls"] > 0
        assert section["probe_s"] >= 0.0
        assert logs and "obs overhead" in logs[0]

    def test_gate_accepts_real_measurement_shape(self):
        case = WallclockCase("cg-2d5-tiny", "2d5", "cg", 4096, 2, 2)
        section = _measure_obs_overhead(case=case, repeats=2, warmup=0)
        report = {"obs_overhead": section}
        failures = require_obs_overhead(report, max_ratio=1e9)
        assert failures == []
