"""The artifact's BenchmarkStencil driver and the ASCII plot helper."""

import numpy as np
import pytest

from repro.bench import (
    DIM_CODES,
    SOLVER_CODES,
    ascii_xy_plot,
    benchmark_stencil,
)
from repro.runtime import lassen


class TestBenchmarkStencil:
    def test_codes_match_artifact(self):
        assert DIM_CODES == {1: "1d3", 2: "2d5", 3: "3d7", 4: "3d27"}
        assert SOLVER_CODES == {1: "cg", 2: "bicgstab", 3: "gmres"}

    def test_basic_run(self):
        r = benchmark_stencil(dim=2, solver=1, nx=32, ny=32, it=20, warmup=2)
        assert r.stencil == "2d5" and r.solver == "cg"
        assert r.n_unknowns == 1024
        assert r.iterations == 20
        assert r.total_time > 0
        assert r.time_per_iteration == pytest.approx(r.total_time / 20)
        assert np.isfinite(r.final_residual)
        assert "BenchmarkStencil" in r.report()

    def test_1d_ignores_ny_nz(self):
        r = benchmark_stencil(dim=1, solver=1, nx=256, ny=99, nz=99, it=5, warmup=1)
        assert r.grid == (256,)

    def test_3d_stencils(self):
        for dim, kind in ((3, "3d7"), (4, "3d27")):
            r = benchmark_stencil(dim=dim, solver=2, nx=8, ny=8, nz=8, it=3, warmup=1)
            assert r.stencil == kind
            assert r.n_unknowns == 512

    def test_vp_defaults_to_paper_rule(self):
        r = benchmark_stencil(dim=1, solver=1, nx=1024, it=3, warmup=0,
                              machine=lassen(2))
        assert r.vp == 8  # 4 × nodes

    def test_bad_codes_rejected(self):
        with pytest.raises(KeyError):
            benchmark_stencil(dim=5, solver=1, nx=8)
        with pytest.raises(KeyError):
            benchmark_stencil(dim=1, solver=9, nx=8)
        with pytest.raises(ValueError):
            benchmark_stencil(dim=2, solver=1, nx=8, ny=0)

    def test_gmres_counts_cycles(self):
        r = benchmark_stencil(dim=1, solver=3, nx=128, it=4, warmup=1)
        assert r.solver == "gmres"
        assert r.iterations == 4


class TestAsciiPlot:
    def test_all_series_plotted_with_legend(self):
        out = ascii_xy_plot(
            {"a": [(10, 1.0), (100, 2.0)], "b": [(10, 3.0), (100, 4.0)]},
            width=30, height=8,
        )
        assert "* a" in out and "o b" in out
        assert "*" in out.splitlines()[1] or any("*" in l for l in out.splitlines())

    def test_handles_empty(self):
        assert ascii_xy_plot({}) == "(no data)"
        assert ascii_xy_plot({"a": []}) == "(no data)"

    def test_drops_nonpositive_on_log_axes(self):
        out = ascii_xy_plot({"a": [(10, 0.0), (100, float("nan")), (1000, 5.0)]})
        assert "(no data)" not in out

    def test_linear_axes(self):
        out = ascii_xy_plot({"a": [(0.5, 1.0), (2.0, 3.0)]}, logx=False, logy=False)
        assert "a" in out

    def test_single_point(self):
        out = ascii_xy_plot({"a": [(10, 10)]}, width=12, height=4)
        assert "* a" in out

    def test_title_included(self):
        out = ascii_xy_plot({"a": [(1, 1), (2, 2)]}, title="hello")
        assert out.splitlines()[0] == "hello"

    def test_in_fig9_summary(self):
        from repro.bench import Fig9Row, summarize_fig9

        rows = [
            Fig9Row(1024, "single", 1e-4),
            Fig9Row(1024, "multi", 1.2e-4),
            Fig9Row(4096, "single", 2e-4),
            Fig9Row(4096, "multi", 1.9e-4),
        ]
        text = summarize_fig9(rows)
        assert "single" in text and "log-log" in text
