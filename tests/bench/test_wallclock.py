"""Wall-clock harness: report shape, baseline gate, speedup acceptance."""

import copy
import json

from repro.bench.wallclock import (
    PROFILES,
    SCHEMA,
    WallclockCase,
    compare_to_baseline,
    load_report,
    require_speedup,
    require_spmv_formats,
    run_wallclock,
    summarize_wallclock,
    write_report,
)
from repro.cli import main

TINY = (WallclockCase("cg-2d5-tiny", "2d5", "cg", 256, 4, 4),)


def tiny_report():
    return run_wallclock(TINY, repeats=1, warmup=0)


class TestRunWallclock:
    def test_report_shape_and_determinism(self):
        report = tiny_report()
        assert report["schema"] == SCHEMA
        assert report["host"]["cpu_count"] >= 1
        assert report["calibration_s"] > 0.0
        (case,) = report["cases"]
        assert set(case["backends"]) == {"serial", "threads"}
        for stats in case["backends"].values():
            assert stats["median_s"] > 0.0
            assert len(stats["runs_s"]) == 1
        assert case["speedup"] is not None
        assert case["residual_match"] is True  # bitwise, not approximate
        assert "cg-2d5-tiny" in summarize_wallclock(report)

    def test_single_backend_skips_comparison(self):
        report = run_wallclock(TINY, backends=("serial",), repeats=1, warmup=0)
        (case,) = report["cases"]
        assert case["speedup"] is None
        assert case["residual_match"] is None

    def test_profiles_cover_speedup_case(self):
        assert set(PROFILES) == {"smoke", "full"}
        assert any(
            c.solver == "cg" and c.n_unknowns >= 256_000 for c in PROFILES["full"]
        )


class TestBaselineGate:
    def test_self_comparison_passes(self):
        report = tiny_report()
        assert compare_to_baseline(report, report) == []

    def test_regression_detected(self):
        report = tiny_report()
        baseline = copy.deepcopy(report)
        for case in baseline["cases"]:
            case["backends"]["serial"]["median_s"] /= 3.0
        failures = compare_to_baseline(report, baseline, max_regression=2.0)
        assert len(failures) == 1
        assert "cg-2d5-tiny [serial]" in failures[0]

    def test_calibration_normalizes_machine_speed(self):
        # Same code on a 3x slower machine: times and calibration scale
        # together, so the gate must not fire.
        report = tiny_report()
        slower = copy.deepcopy(report)
        slower["calibration_s"] *= 3.0
        for case in slower["cases"]:
            for stats in case["backends"].values():
                stats["median_s"] *= 3.0
                stats["runs_s"] = [t * 3.0 for t in stats["runs_s"]]
        assert compare_to_baseline(slower, report, max_regression=2.0) == []

    def test_new_cases_are_allowed(self):
        report = tiny_report()
        baseline = copy.deepcopy(report)
        baseline["cases"] = []
        assert compare_to_baseline(report, baseline) == []

    def test_roundtrip(self, tmp_path):
        report = tiny_report()
        path = tmp_path / "BENCH_wallclock.json"
        write_report(report, str(path))
        assert load_report(str(path)) == json.loads(path.read_text())


class TestSpeedupAcceptance:
    @staticmethod
    def doctored(speedup, cpu_count, match=True):
        return {
            "schema": SCHEMA,
            "host": {"cpu_count": cpu_count},
            "cases": [{
                "name": "cg-2d5-1m", "solver": "cg", "n_unknowns": 2 ** 20,
                "speedup": speedup, "residual_match": match,
                "backends": {},
            }],
        }

    def test_passes_on_fast_multicore(self):
        assert require_speedup(self.doctored(1.8, cpu_count=4)) == []

    def test_fails_below_bar_on_multicore(self):
        failures = require_speedup(self.doctored(1.1, cpu_count=4))
        assert failures and "1.10x" in failures[0]

    def test_single_cpu_skips_speedup_but_not_determinism(self):
        assert require_speedup(self.doctored(0.7, cpu_count=1)) == []
        failures = require_speedup(self.doctored(0.7, cpu_count=1, match=False))
        assert failures and "diverge" in failures[0]

    def test_missing_large_case_reported(self):
        failures = require_speedup(tiny_report())
        assert failures and "256000" in failures[0]


class TestSpmvFormatRace:
    @staticmethod
    def doctored(sell=1.0, csr=2.0, ell=3.0, bitwise=True):
        return {
            "spmv_formats": {
                "kind": "3d27",
                "formats": {
                    "csr": {"median_s": csr, "bitwise_vs_csr": True},
                    "ell": {"median_s": ell, "bitwise_vs_csr": True},
                    "sell_c_sigma": {
                        "median_s": sell, "bitwise_vs_csr": bitwise,
                    },
                },
            }
        }

    def test_report_contains_race(self):
        report = tiny_report()
        race = report["spmv_formats"]
        assert set(race["formats"]) == {"csr", "ell", "sell_c_sigma"}
        for stats in race["formats"].values():
            assert stats["median_s"] > 0.0
        # Only SELL-C-σ *claims* bitwise-CSR SpMV (ELL's axis-sum uses
        # pairwise reduction); the race records the flag per format.
        assert race["formats"]["csr"]["bitwise_vs_csr"] is True
        assert race["formats"]["sell_c_sigma"]["bitwise_vs_csr"] is True
        assert "spmv race" in summarize_wallclock(report)

    def test_gate_passes_when_fastest(self):
        assert require_spmv_formats(self.doctored()) == []

    def test_gate_fails_when_slower_than_any_rival(self):
        failures = require_spmv_formats(self.doctored(sell=2.5))
        assert failures and "csr" in failures[0]

    def test_gate_ratio_is_tunable(self):
        report = self.doctored(sell=2.5)
        assert require_spmv_formats(report, max_ratio=1.5) == []

    def test_gate_reports_bitwise_divergence(self):
        failures = require_spmv_formats(self.doctored(bitwise=False))
        assert failures and "bitwise" in failures[0]

    def test_missing_section_reported(self):
        assert "spmv_formats" in require_spmv_formats({})[0]


class TestBenchCLI:
    def test_bench_gate_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setitem(PROFILES, "smoke", TINY)
        out = tmp_path / "BENCH_wallclock.json"
        baseline = tmp_path / "baseline.json"
        assert main([
            "bench", "--repeats", "1", "--warmup", "0",
            "--out", str(out), "--baseline", str(baseline), "--update-baseline",
        ]) == 0
        assert load_report(str(out))["schema"] == SCHEMA
        assert main([
            "bench", "--repeats", "1", "--warmup", "0",
            "--out", str(out), "--baseline", str(baseline),
        ]) == 0

    def test_bench_serial_only(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setitem(PROFILES, "smoke", TINY)
        out = tmp_path / "r.json"
        assert main([
            "bench", "--backend", "serial", "--repeats", "1", "--warmup", "0",
            "--out", str(out),
        ]) == 0
        report = load_report(str(out))
        assert report["config"]["backends"] == ["serial"]
