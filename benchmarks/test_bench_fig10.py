"""Figure 10 regeneration: dynamic load balancing under background load.

Saves ``fig10.txt`` with the static/dynamic comparison and the measured
total-time reduction (paper: 66%; see EXPERIMENTS.md for the honest
accounting of where this reproduction lands and why)."""

import numpy as np
import pytest

from conftest import save_report
from repro.bench import run_fig10, summarize_fig10


@pytest.mark.benchmark(group="fig10-harness")
def test_fig10_experiment(benchmark, results_dir):
    def experiment():
        return run_fig10(
            grid_exp=10,
            nodes=8,
            iterations=300,
            load_period=75,
            rebalance_period=10,
            scale=16.0,
            seed=1,
        )

    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    lines = [summarize_fig10(result), ""]
    s, d = result.iteration_times_static, result.iteration_times_dynamic
    lines.append("per-window mean iteration time (ms):")
    lines.append("window   static  dynamic")
    for w in range(0, len(s), 75):
        lines.append(
            f"{w // 75:6d}  {s[w:w+75].mean()*1e3:7.2f}  {d[w:w+75].mean()*1e3:7.2f}"
        )
    save_report(results_dir, "fig10", "\n".join(lines))
    assert result.migrations > 0
    assert result.reduction > 0.0  # dynamic mapping helps overall


@pytest.mark.benchmark(group="fig10-harness")
def test_fig10_multiseed_stability(benchmark, results_dir):
    """The qualitative claim holds across seeds."""

    def sweep():
        reductions = []
        for seed in range(3):
            r = run_fig10(
                grid_exp=9, nodes=8, iterations=150, load_period=50,
                rebalance_period=10, scale=16.0, seed=seed,
            )
            reductions.append(r.reduction)
        return reductions

    reductions = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = "\n".join(
        [f"seed {i}: total-time reduction {red * 100:+.1f}%" for i, red in enumerate(reductions)]
        + [f"mean: {np.mean(reductions) * 100:+.1f}%  (paper: 66%)"]
    )
    save_report(results_dir, "fig10_seeds", text)
    assert np.mean(reductions) > 0.0
