"""Figure 9 regeneration: single- vs multi-operator BiCGStab.

Saves ``fig9.txt`` with the per-size series and the measured crossover
point (paper: multi-operator is slower below ~1e9 unknowns, faster
above; on the bandwidth-scaled two-node machine the crossover appears
at an executable size — see EXPERIMENTS.md for the scale equivalence).
"""

import pytest

from conftest import save_report
from repro.bench import run_fig9, summarize_fig9
from repro.bench.fig9 import bicgstab_time_per_iteration
from repro.runtime import lassen_scaled


@pytest.mark.benchmark(group="fig9-harness")
def test_fig9_sweep(benchmark, results_dir):
    def sweep():
        return run_fig9(exponents=(5, 6, 7, 8, 9, 10, 11), warmup=2, timed=6)

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(results_dir, "fig9", summarize_fig9(rows))
    # Shape assertions: multi pays overhead at the smallest size...
    by = {(r.n_unknowns, r.formulation): r.time_per_iteration for r in rows}
    sizes = sorted({r.n_unknowns for r in rows})
    assert by[(sizes[0], "multi")] > by[(sizes[0], "single")]
    # ...and wins at the largest.
    assert by[(sizes[-1], "multi")] < by[(sizes[-1], "single")]


@pytest.mark.benchmark(group="fig9-kernels")
@pytest.mark.parametrize("n_bands", [1, 2], ids=["single-operator", "multi-operator"])
def test_formulation_iteration_cost(benchmark, n_bands):
    """Wall time of timing one BiCGStab iteration in each formulation."""
    machine = lassen_scaled(2, 16.0)
    benchmark.pedantic(
        lambda: bicgstab_time_per_iteration((256, 256), n_bands, machine, warmup=1, timed=3),
        rounds=1,
        iterations=1,
    )
