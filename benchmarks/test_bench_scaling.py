"""Node-count scaling sweeps (the paper's artifact protocol runs every
benchmark "for each node count, scaling from 1 to 256 in powers of two").

Two views:

* **Weak scaling** (executable): fixed unknowns per GPU, nodes 1→4 on
  the bandwidth-scaled machine — per-iteration time should stay nearly
  flat, growing only by the allreduce's log(p) latency term.
* **Strong scaling** (closed-form, true Lassen constants): fixed 2³⁰
  unknowns, nodes 1→256 — time per iteration falls until the
  per-task/latency floor, reproducing the left-edge plateau the paper's
  multi-node panels share.
"""

import numpy as np
import pytest

from conftest import save_report
from repro.api import make_planner
from repro.bench.analytic import baseline_time_per_iteration, legion_time_per_iteration
from repro.bench.report import format_table
from repro.core import CGSolver
from repro.problems import grid_shape_for, laplacian_scipy
from repro.runtime import lassen, lassen_scaled


@pytest.mark.benchmark(group="scaling")
def test_weak_scaling_real(benchmark, results_dir, rng):
    """Fixed 2¹⁸ unknowns per node, nodes 1, 2, 4 — executable."""

    def sweep():
        rows = []
        for nodes in (1, 2, 4):
            shape = grid_shape_for("2d5", (2 ** 18) * nodes)
            A = laplacian_scipy("2d5", shape)
            b = rng.random(A.shape[0])
            planner = make_planner(A, b, machine=lassen_scaled(nodes, 16.0))
            solver = CGSolver(planner)
            solver.run_fixed(3)
            res = solver.run_fixed(8)
            rows.append([nodes, A.shape[0], float(np.median(res.iteration_times)) * 1e6])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(["nodes", "unknowns", "µs/iter (weak)"], rows, "{:.1f}")
    save_report(results_dir, "scaling_weak", text)
    # Weak scaling: growth bounded (allreduce log p + wider halos only).
    times = [r[2] for r in rows]
    assert times[-1] < times[0] * 1.6


@pytest.mark.benchmark(group="scaling")
def test_strong_scaling_model(benchmark, results_dir):
    """Fixed 2³⁰-unknown 2-D problem, nodes 1→256, closed-form model."""

    def sweep():
        rows = []
        for nodes in (1, 4, 16, 64, 256):
            m = lassen(nodes)
            vp = 4 * nodes
            t_leg = legion_time_per_iteration("cg", "2d5", 2 ** 30, m, vp)
            t_pet = baseline_time_per_iteration("cg", "2d5", 2 ** 30, m, "petsc")
            rows.append([nodes, t_leg * 1e6, t_pet * 1e6])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(
        ["nodes", "legion µs/iter", "petsc µs/iter"], rows, "{:.1f}"
    )
    save_report(results_dir, "scaling_strong", text)
    leg = {r[0]: r[1] for r in rows}
    # Strong scaling: more nodes must help...
    assert leg[16] < leg[1]
    assert leg[256] < leg[64]
    # ...but the last doubling-pair falls short of ideal 4x (the
    # overhead/latency terms begin to bite as per-GPU work shrinks).
    assert leg[64] / leg[256] < 3.6
