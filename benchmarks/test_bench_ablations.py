"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **Format ablation** — SpMV across the Figure 3 format zoo on the same
  stencil matrix: both real NumPy kernel wall time and the simulated
  per-piece device time from each format's byte model (DIA's
  metadata-free layout wins on bandwidth; ELL pays padding).
* **Tracing ablation** — simulated per-iteration time with dynamic
  tracing on vs off (the Lee et al. optimization the paper's runs use).
* **Piece-count ablation** — the canonical-partition granularity sweep:
  more pieces expose parallelism but multiply per-task overhead.
* **Direct-write ablation** — the initializer-operator optimization
  (write + reduce vs fill + reduce) on a single-operator system.
"""

import numpy as np
import pytest

from conftest import save_report
from repro.api import make_planner
from repro.bench.report import format_table
from repro.core import CGSolver
from repro.problems import laplacian_csr, laplacian_scipy
from repro.runtime import Partition, lassen, lassen_scaled
from repro.sparse import ALL_FORMATS, COOMatrix

FORMAT_IDS = [name for name, _ in ALL_FORMATS]


@pytest.mark.benchmark(group="ablation-formats")
@pytest.mark.parametrize(("name", "convert"), ALL_FORMATS, ids=FORMAT_IDS)
def test_format_spmv_wall_time(benchmark, name, convert, rng):
    """Real NumPy SpMV kernel speed per format (same 2-D stencil)."""
    A = laplacian_scipy("2d5", (128, 128))
    m = convert(COOMatrix.from_scipy(A))
    x = rng.random(A.shape[0])
    y = benchmark(m.spmv, x)
    np.testing.assert_allclose(y, A @ x, atol=1e-9)


@pytest.mark.benchmark(group="ablation-formats")
def test_format_simulated_bytes_report(benchmark, results_dir):
    """The byte models behind the simulated SpMV times, per format."""
    A = laplacian_scipy("2d5", (128, 128))
    base = benchmark.pedantic(COOMatrix.from_scipy, args=(A,), rounds=1, iterations=1)
    machine = lassen(1)
    gpu = machine.gpus[0]
    rows = []
    for name, convert in ALL_FORMATS:
        m = convert(base)
        n_k = m.kernel_space.volume
        n = A.shape[0]
        b = m.piece_bytes(n_k, n, n)
        t = gpu.kernel_time(2.0 * n_k, b, irregular=True)
        rows.append([name, n_k, b / 1e6, t * 1e6])
    rows.sort(key=lambda r: r[3])
    text = format_table(
        ["format", "stored slots", "MB touched", "simulated µs (V100)"], rows, "{:.2f}"
    )
    save_report(results_dir, "ablation_formats", text)
    by_name = {r[0]: r[3] for r in rows}
    assert by_name["dia"] < by_name["csr"] < by_name["coo"]  # metadata weight


@pytest.mark.benchmark(group="ablation-tracing")
@pytest.mark.parametrize("tracing", [True, False], ids=["traced", "untraced"])
def test_tracing_ablation(benchmark, tracing, rng, results_dir):
    """Simulated per-iteration time with/without dynamic tracing."""
    A = laplacian_scipy("2d5", (128, 128))
    b = rng.random(A.shape[0])
    planner = make_planner(A, b, machine=lassen_scaled(1))
    solver = CGSolver(planner)

    def run():
        res = solver.run_fixed(6, use_tracing=tracing)
        return float(np.median(res.iteration_times))

    sim_time = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["simulated_us_per_iteration"] = sim_time * 1e6


@pytest.mark.benchmark(group="ablation-tracing")
def test_tracing_reduces_simulated_time(benchmark, results_dir, rng):
    A = laplacian_scipy("2d5", (128, 128))
    b = rng.random(A.shape[0])
    def measure():
        times = {}
        for tracing in (True, False):
            planner = make_planner(A, b, machine=lassen_scaled(1))
            solver = CGSolver(planner)
            solver.run_fixed(2, use_tracing=tracing)
            res = solver.run_fixed(8, use_tracing=tracing)
            times[tracing] = float(np.median(res.iteration_times))
        return times

    times = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = (
        f"traced:   {times[True] * 1e6:8.1f} µs/iteration\n"
        f"untraced: {times[False] * 1e6:8.1f} µs/iteration\n"
        f"speedup from dynamic tracing: {times[False] / times[True]:.2f}x"
    )
    save_report(results_dir, "ablation_tracing", text)
    assert times[True] < times[False]


@pytest.mark.benchmark(group="ablation-pieces")
def test_piece_count_sweep(benchmark, results_dir, rng):
    """Canonical-partition granularity: per-iteration simulated time as
    vp grows past the device count (paper §5 sets vp = 4 × nodes)."""
    A = laplacian_scipy("2d5", (256, 256))
    b = rng.random(A.shape[0])
    def sweep():
        rows = []
        for vp in (1, 2, 4, 8, 16, 32):
            planner = make_planner(A, b, machine=lassen_scaled(1), n_pieces=vp)
            solver = CGSolver(planner)
            solver.run_fixed(2)
            res = solver.run_fixed(6)
            rows.append([vp, float(np.median(res.iteration_times)) * 1e6])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = format_table(["pieces", "simulated µs/iter"], rows, "{:.1f}")
    save_report(results_dir, "ablation_pieces", text)
    times = {vp: t for vp, t in rows}
    # One piece serializes on one GPU; vp = #devices is the sweet spot;
    # heavy oversubscription pays per-task overhead.
    assert times[4] < times[1]
    assert times[32] > times[4]


@pytest.mark.benchmark(group="ablation-direct-write")
def test_direct_write_vs_fill_reduce(benchmark, results_dir, rng):
    """The initializer-operator optimization: a single complete operator
    writes its output directly instead of zero-fill + reduction."""
    from repro.core.planner import SOL

    A = laplacian_scipy("2d5", (256, 256))
    b = rng.random(A.shape[0])

    # Optimized path (the default).
    planner = make_planner(A, b, machine=lassen_scaled(1))
    planner.runtime.engine.keep_timeline = True
    opt = CGSolver(planner)
    benchmark.pedantic(opt.run_fixed, args=(4,), rounds=1, iterations=1)
    names = [e.name for e in planner.runtime.engine.timeline]
    fills_opt = sum(1 for n in names if n == "fill")

    # Forced fill+reduce path: express A as the sum of a top-rows-only
    # and a bottom-rows-only matrix — neither covers the output rows
    # completely, so no operator qualifies as the initializer and every
    # matmul zero-fills and reduces.
    import scipy.sparse as sp

    from repro.core import Planner
    from repro.runtime import IndexSpace, Runtime, ShardedMapper
    from repro.sparse import CSRMatrix

    machine = lassen_scaled(1)
    runtime = Runtime(machine=machine, mapper=ShardedMapper(machine), keep_timeline=True)
    planner2 = Planner(runtime)
    n = A.shape[0]
    space = IndexSpace.linear(n)
    mask_top = sp.diags((np.arange(n) < n // 2).astype(float))
    top = CSRMatrix.from_scipy((mask_top @ A).tocsr(), domain_space=space, range_space=space)
    bottom = CSRMatrix.from_scipy(
        ((sp.identity(n) - mask_top) @ A).tocsr(), domain_space=space, range_space=space
    )
    part = Partition.equal(space, 4)
    sid = planner2.add_sol_vector((space, np.zeros(n)), part)
    rid = planner2.add_rhs_vector((space, b), part)
    planner2.add_operator(top, sid, rid)
    planner2.add_operator(bottom, sid, rid)
    alias = CGSolver(planner2)
    alias.run_fixed(4)
    names2 = [e.name for e in runtime.engine.timeline]
    fills_alias = sum(1 for n in names2 if n == "fill")

    # Same linear system, same answer:
    np.testing.assert_allclose(
        planner2.get_array(SOL), planner.get_array(SOL), atol=1e-10
    )
    text = (
        f"fill tasks, single complete operator (direct write): {fills_opt}\n"
        f"fill tasks, two aliased operators (fill + reduce):   {fills_alias}"
    )
    save_report(results_dir, "ablation_direct_write", text)
    assert fills_opt == 0
    assert fills_alias > 0
