"""Benchmark-suite fixtures.

Each figure benchmark regenerates its paper table/series and writes it
to ``benchmarks/results/``, in addition to the pytest-benchmark wall
timings of the underlying harness kernels.
"""

import pathlib

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def rng():
    return np.random.default_rng(2025)


def save_report(results_dir, name: str, text: str) -> None:
    path = results_dir / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[saved {path}]")
    print(text)
