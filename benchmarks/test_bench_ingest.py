"""Ingest-cost ablation: the P4 claim made measurable.

Traditional libraries copy user matrices and vectors into internal
structures at setup (``MatSetValues``-style assembly); KDRSolvers
attaches user arrays in place.  This benchmark measures both: the real
wall-clock cost of each setup path on the same problem, and the
simulated assembly time the baselines charge (which the planner never
pays).
"""

import numpy as np
import pytest

from conftest import save_report
from repro.api import make_planner
from repro.baselines import PETScLikeLibrary
from repro.bench.report import format_table
from repro.problems import laplacian_scipy
from repro.runtime import lassen, lassen_scaled


@pytest.mark.benchmark(group="ingest")
def test_planner_ingest_wall_time(benchmark, rng):
    """Planner setup (in-place attach + co-partitioning + kernel
    compilation) — the one-time cost the solve amortizes."""
    A = laplacian_scipy("2d5", (256, 256))
    b = rng.random(A.shape[0])

    def setup():
        planner = make_planner(A, b, machine=lassen_scaled(1))
        planner.is_square()  # force freeze (plans + places everything)
        return planner

    benchmark(setup)


@pytest.mark.benchmark(group="ingest")
def test_baseline_ingest_wall_time(benchmark, rng):
    A = laplacian_scipy("2d5", (256, 256))
    b = rng.random(A.shape[0])
    benchmark(lambda: PETScLikeLibrary(A, b, lassen_scaled(1)))


@pytest.mark.benchmark(group="ingest")
def test_ingest_report(benchmark, results_dir, rng):
    """Simulated ingest cost and the zero-copy property."""
    A = laplacian_scipy("2d5", (512, 512))
    b = rng.random(A.shape[0])

    def measure():
        lib = PETScLikeLibrary(A, b, lassen(1))
        return lib.ingest_time

    baseline_ingest = benchmark.pedantic(measure, rounds=1, iterations=1)

    # The planner's attach is zero-copy: mutating the planner-held data
    # mutates the user's array.
    planner = make_planner(A, b.copy(), machine=lassen(1))
    planner.is_square()
    rows = [
        ["baseline assembly (simulated)", baseline_ingest * 1e6, "copies user data"],
        ["planner attach (simulated)", 0.0, "in place, zero copy (P4)"],
    ]
    text = format_table(["setup path", "µs", "note"], rows, "{:.1f}")
    save_report(results_dir, "ablation_ingest", text)
    assert baseline_ingest > 0.0


@pytest.mark.benchmark(group="ingest")
def test_attach_is_zero_copy(benchmark, rng):
    """End-to-end proof: the solver writes through to the user's array."""
    from repro.core import CGSolver
    from repro.core.planner import SOL

    A = laplacian_scipy("1d3", (512,))
    b = rng.random(512)
    x_user = np.zeros(512)
    from repro.core import Planner
    from repro.runtime import IndexSpace, Partition, Runtime, ShardedMapper
    from repro.sparse import CSRMatrix

    machine = lassen(1)
    rt = Runtime(machine=machine, mapper=ShardedMapper(machine))
    planner = Planner(rt)
    space = IndexSpace.linear(512)
    part = Partition.equal(space, 4)
    planner.add_sol_vector((space, x_user), part)
    planner.add_rhs_vector((space, b), part)
    planner.add_operator(
        CSRMatrix.from_scipy(A, domain_space=space, range_space=space), 0, 0
    )
    solver = CGSolver(planner)
    benchmark.pedantic(
        lambda: solver.solve(tolerance=1e-10, max_iterations=2000),
        rounds=1, iterations=1,
    )
    # The user's own array now holds the solution — no copy-back needed.
    assert np.linalg.norm(A @ x_user - b) < 1e-8
