"""Micro-benchmarks of the runtime substrate's hot paths.

These guard the reproduction harness's own performance: dependent-
partitioning projections, subset algebra, and engine task throughput
are what make the executable sweeps feasible at 10⁶-unknown scales.
"""

import numpy as np
import pytest

from repro.core.projection import col_K_to_D, row_R_to_K
from repro.problems import laplacian_csr
from repro.runtime import (
    IndexSpace,
    Partition,
    Privilege,
    Runtime,
    ShardedMapper,
    Subset,
    TaskLauncher,
    lassen,
)


@pytest.fixture(scope="module")
def stencil():
    return laplacian_csr("2d5", (512, 512))


@pytest.mark.benchmark(group="runtime-deppart")
def test_row_preimage_projection(benchmark, stencil):
    """row_R→K over a 1.3M-nnz CSR matrix, 16 pieces."""
    P = Partition.equal(stencil.range_space, 16)
    kp = benchmark(row_R_to_K, stencil, P)
    assert sum(p.volume for p in kp) == stencil.nnz


@pytest.mark.benchmark(group="runtime-deppart")
def test_col_image_projection(benchmark, stencil):
    P = Partition.equal(stencil.range_space, 16)
    KP = row_R_to_K(stencil, P)
    DP = benchmark(col_K_to_D, stencil, KP)
    assert len(DP.pieces) == 16


@pytest.mark.benchmark(group="runtime-subsets")
def test_subset_intersection_interval(benchmark):
    space = IndexSpace.linear(1 << 22)
    a = Subset.interval(space, 0, 1 << 21)
    b = Subset.interval(space, 1 << 20, (1 << 22) - 1)
    out = benchmark(a.intersection, b)
    assert out.volume == (1 << 21) - (1 << 20) + 1


@pytest.mark.benchmark(group="runtime-subsets")
def test_subset_union_scattered(benchmark, rng):
    space = IndexSpace.linear(1 << 20)
    a = Subset(space, rng.choice(1 << 20, size=50_000, replace=False))
    b = Subset(space, rng.choice(1 << 20, size=50_000, replace=False))
    benchmark(a.union, b)


@pytest.mark.benchmark(group="runtime-engine")
def test_engine_task_throughput(benchmark):
    """Tasks simulated per second (dominates small-problem sweeps)."""
    machine = lassen(2)
    runtime = Runtime(machine=machine, mapper=ShardedMapper(machine))
    region = runtime.create_region(IndexSpace.linear(1 << 16), {"v": np.float64})
    runtime.allocate(region, "v")
    part = Partition.equal(region.ispace, 8)

    def body(ctx):
        return None

    def launch_batch():
        for p in range(8):
            tl = TaskLauncher("noop", body, flops=1.0, owner_hint=p)
            tl.add_requirement(region, ["v"], part[p], Privilege.READ_ONLY)
            runtime.execute(tl, point=p)

    benchmark(launch_batch)


@pytest.mark.benchmark(group="runtime-engine")
def test_traced_iteration_throughput(benchmark):
    """Replayed (traced) iterations: the solver steady state."""
    machine = lassen(1)
    runtime = Runtime(machine=machine, mapper=ShardedMapper(machine))
    region = runtime.create_region(IndexSpace.linear(1 << 16), {"v": np.float64})
    runtime.allocate(region, "v")
    part = Partition.equal(region.ispace, 4)

    def body(ctx):
        ctx[0].write(ctx[0].read() * 1.0001)

    def iteration():
        runtime.begin_trace("bench")
        for p in range(4):
            tl = TaskLauncher("scale", body, flops=100.0, owner_hint=p)
            tl.add_requirement(region, ["v"], part[p], Privilege.READ_WRITE)
            runtime.execute(tl, point=p)
        runtime.end_trace("bench")

    iteration()  # record
    benchmark(iteration)
