"""Figure 8 regeneration: library comparison, 4 stencils × 3 KSMs.

Produces two reports:

* ``fig8_real.txt`` — executable sweep (numerics run for real) on the
  bandwidth-scaled single-node machine, sizes 2¹²…2²⁰;
* ``fig8_model.txt`` — full-scale sweep with true Lassen constants at
  16 nodes / 64 GPUs, sizes 2²⁴…2³² (the paper's axis), via the
  validated closed-form model;

plus pytest-benchmark wall timings of one representative solve per
library (how long the *reproduction harness itself* takes).
"""

import numpy as np
import pytest

from conftest import save_report
from repro.api import make_planner
from repro.baselines import PETScLikeLibrary, TrilinosLikeLibrary
from repro.bench import run_fig8, summarize_fig8
from repro.core import CGSolver
from repro.problems import laplacian_scipy
from repro.runtime import lassen_scaled


@pytest.mark.benchmark(group="fig8-harness")
def test_fig8_real_sweep(benchmark, results_dir):
    """The scaled-down executable Figure 8 (all 12 panels)."""

    def sweep():
        return run_fig8(
            sizes=[2**12, 2**14, 2**16, 2**18, 2**20],
            nodes=1,
            mode="real",
            warmup=2,
            timed=6,
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(results_dir, "fig8_real", summarize_fig8(rows))
    # The headline shape must hold in the saved report.
    big = [r for r in rows if r.stencil == "2d5" and r.solver == "cg"]
    sizes = sorted({r.n_unknowns for r in big})
    t = {
        (r.library, r.n_unknowns): r.time_per_iteration for r in big
    }
    assert t[("legion", sizes[0])] > t[("petsc", sizes[0])]
    assert t[("legion", sizes[-1])] < t[("trilinos", sizes[-1])]


@pytest.mark.benchmark(group="fig8-harness")
def test_fig8_model_sweep(benchmark, results_dir):
    """The paper-scale Figure 8 from the validated analytic model."""

    def sweep():
        return run_fig8(
            sizes=[2**24, 2**26, 2**28, 2**30, 2**32],
            nodes=16,
            mode="model",
        )

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    save_report(results_dir, "fig8_model", summarize_fig8(rows))


@pytest.mark.benchmark(group="fig8-kernels")
def test_legion_cg_iteration(benchmark, rng):
    """Wall time of one simulated+executed CG iteration (LegionSolvers)."""
    A = laplacian_scipy("2d5", (512, 512))
    b = rng.random(A.shape[0])
    planner = make_planner(A, b, machine=lassen_scaled(1))
    solver = CGSolver(planner)
    solver.run_fixed(2)
    benchmark(lambda: solver.run_fixed(1))


@pytest.mark.benchmark(group="fig8-kernels")
@pytest.mark.parametrize("cls", [PETScLikeLibrary, TrilinosLikeLibrary], ids=["petsc", "trilinos"])
def test_baseline_cg_iteration(benchmark, cls, rng):
    A = laplacian_scipy("2d5", (512, 512))
    b = rng.random(A.shape[0])
    lib = cls(A, b, lassen_scaled(1))
    lib.run("cg", 2)
    benchmark(lambda: lib.run("cg", 1))
